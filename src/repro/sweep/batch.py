"""Batched adjoint execution: N input points per call.

:class:`BatchedErrorEstimator` wraps a compiled
:class:`~repro.core.api.ErrorEstimator` and evaluates it over a batch of
input points.  Two backends:

* **vectorized** — the adjoint IR is re-rendered as NumPy
  array-at-a-time code (:mod:`repro.codegen.npgen`): one pass through
  the generated function replaces N scalar calls.  Per lane it performs
  bit-identical operations to the scalar path (transcendentals included,
  via :func:`repro.codegen.runtime.exactwise`).
* **loop** — the scalar estimator called per point.  Used when the
  kernel cannot be vectorized (array parameters, data-dependent trip
  counts, sensitivity traces) — results are identical either way, only
  slower.

A batched variant is compiled lazily per *set of swept parameters* (the
taint analysis — and therefore the generated code — depends on which
parameters are arrays) and memoized on the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codegen import runtime
from repro.codegen.npgen import UnvectorizableError, generate_batch_source
from repro.core.report import ErrorReport
from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType
from repro.util.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.api import ErrorEstimator


@dataclass
class BatchReport:
    """Per-point error-estimation results for a batch of N inputs.

    Mirrors :class:`~repro.core.report.ErrorReport` with a leading batch
    axis: every field holds length-N arrays (``gradients`` of array
    parameters hold ``(N, len)`` matrices under the loop backend).
    """

    n: int
    #: primal return value per point
    values: np.ndarray
    #: accumulated FP error estimate per point
    total_error: np.ndarray
    #: per-variable error contributions, each length N
    per_variable: Dict[str, np.ndarray] = field(default_factory=dict)
    #: d(value)/d(param) per point
    gradients: Dict[str, np.ndarray] = field(default_factory=dict)
    #: which backend produced the results: ``vectorized`` or ``loop``
    backend: str = "vectorized"
    #: True when the report was served from a sweep cache
    from_cache: bool = False
    #: session provenance (session/config identity, method, sequence
    #: number) — stamped by :class:`repro.session.Session`; never
    #: serialized (cache entries are provenance-free by design, the
    #: session re-stamps every report it hands out)
    provenance: Optional[Dict[str, object]] = None

    def point(self, i: int) -> ErrorReport:
        """The scalar :class:`ErrorReport` of sample ``i``."""
        rep = ErrorReport(value=float(self.values[i]))
        rep.total_error = float(self.total_error[i])
        rep.per_variable = {
            v: float(a[i]) for v, a in self.per_variable.items()
        }
        rep.gradients = {
            p: (float(a[i]) if np.ndim(a[i]) == 0 else np.asarray(a[i]))
            for p, a in self.gradients.items()
        }
        return rep

    def worst(self) -> int:
        """Index of the sample with the largest total error."""
        return int(np.argmax(self.total_error))

    def copy(self) -> "BatchReport":
        """Deep copy (fresh arrays) — the cache hands out copies so
        callers mutating a result can never corrupt the cached entry."""
        return BatchReport(
            n=self.n,
            values=np.array(self.values),
            total_error=np.array(self.total_error),
            per_variable={
                v: np.array(a) for v, a in self.per_variable.items()
            },
            gradients={
                g: np.array(a) for g, a in self.gradients.items()
            },
            backend=self.backend,
            from_cache=self.from_cache,
            provenance=(
                dict(self.provenance)
                if self.provenance is not None
                else None
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for (de)serialization by the sweep cache."""
        return {
            "n": self.n,
            "values": self.values,
            "total_error": self.total_error,
            "per_variable": dict(self.per_variable),
            "gradients": dict(self.gradients),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "BatchReport":
        return cls(
            n=int(d["n"]),
            values=d["values"],  # type: ignore[arg-type]
            total_error=d["total_error"],  # type: ignore[arg-type]
            per_variable=dict(d["per_variable"]),  # type: ignore[arg-type]
            gradients=dict(d["gradients"]),  # type: ignore[arg-type]
            backend=str(d["backend"]),
        )


def _is_sweep_array(a: object) -> bool:
    return (
        isinstance(a, np.ndarray) and a.ndim >= 1
    ) or isinstance(a, (list, tuple))


def _scan_sweep_args(
    primal: N.Function, args: Sequence[object]
) -> Tuple[List[str], int]:
    """Classify positional args into swept parameter names and batch N.

    Shared by the input-batched and config-batched executors: array
    parameters are always lane-uniform; scalar parameters given as
    length-N sequences sweep the input axis and must agree on one N.
    """
    params = primal.params
    if len(args) != len(params):
        raise ExecutionError(
            f"{primal.name}: expected {len(params)} arguments, "
            f"got {len(args)}"
        )
    batched: List[str] = []
    n: Optional[int] = None
    for a, p in zip(args, params):
        if isinstance(p.type, ArrayType):
            continue  # array params are always lane-uniform
        if _is_sweep_array(a):
            m = len(a)  # type: ignore[arg-type]
            if n is None:
                n = m
            elif m != n:
                raise ExecutionError(
                    f"{primal.name}: swept arrays disagree on batch "
                    f"size ({n} vs {m} for {p.name!r})"
                )
            batched.append(p.name)
    if n == 0:
        raise ExecutionError(
            f"{primal.name}: empty sweep (length-0 arrays)"
        )
    return batched, (1 if n is None else n)


class BatchedErrorEstimator:
    """Batch execution façade over one :class:`ErrorEstimator`."""

    def __init__(self, est: "ErrorEstimator") -> None:
        self.est = est
        # frozenset(batched param names) -> (raw callable, source) | None
        self._variants: Dict[frozenset, Optional[Tuple[object, str]]] = {}

    # -- variant compilation ------------------------------------------------
    def _variant(
        self, batched: frozenset
    ) -> Optional[Tuple[object, str]]:
        if batched not in self._variants:
            adj = self.est.adjoint_ir
            try:
                src = generate_batch_source(adj, set(batched))
            except UnvectorizableError:
                self._variants[batched] = None
                return None
            g = runtime.batch_bindings()
            for name, impl in self.est.module.bindings().items():
                # user-bound scalar callables (external error models) are
                # lifted elementwise so they flow through batch code
                g[name] = (
                    runtime.exactwise(impl) if callable(impl) else impl
                )
            ns: Dict[str, object] = {}
            code = compile(src, f"<repro-batch:{adj.name}>", "exec")
            exec(code, g, ns)  # noqa: S102 - our own generated source
            self._variants[batched] = (ns[adj.name], src)
        return self._variants[batched]

    def batch_source(self, batched: Sequence[str]) -> Optional[str]:
        """Generated vectorized source for a swept-parameter set (None if
        the kernel is unvectorizable for that set)."""
        v = self._variant(frozenset(batched))
        return v[1] if v is not None else None

    # -- execution ----------------------------------------------------------
    def execute(self, *args: object) -> BatchReport:
        """Evaluate the estimator over a batch.

        Each positional argument is either a lane-uniform value (scalar,
        or a numpy array for an array parameter) or — for scalar
        parameters only — a length-N array/list sweeping that parameter.
        All swept arrays must share one length N.
        """
        primal = self.est.primal_ir
        batched, n = _scan_sweep_args(primal, args)

        variant = None
        if batched and not self.est._runner.compiled.traces:
            variant = self._variant(frozenset(batched))
        if variant is not None:
            return self._execute_vectorized(args, batched, n, variant[0])
        return self._execute_loop(args, batched, n)

    # -- vectorized backend -------------------------------------------------
    def _execute_vectorized(
        self,
        args: Sequence[object],
        batched: List[str],
        n: int,
        raw: object,
    ) -> BatchReport:
        primal = self.est.primal_ir
        full: List[object] = []
        for a, p in zip(args, primal.params):
            dt = p.type.dtype
            if p.name in batched:
                arr = np.asarray(
                    a, dtype=np.int64 if dt is DType.I64 else np.float64
                )
                if dt in (DType.F32, DType.F16):
                    from repro.fp.precision import round_to

                    arr = np.asarray(round_to(arr, dt))
                full.append(arr)
            else:
                v: object = a
                if dt in (DType.F32, DType.F16) and isinstance(
                    a, (int, float)
                ):
                    from repro.fp.precision import round_to

                    v = round_to(float(a), dt)
                full.append(v)
        with np.errstate(all="ignore"):
            result = raw(*full)  # type: ignore[operator]
        if not isinstance(result, tuple):
            result = (result,)
        named: Dict[Tuple[str, ...], np.ndarray] = {}
        for key, val in zip(self.est.layout["ret_names"], result):
            named[tuple(key)] = np.broadcast_to(
                np.asarray(val, dtype=np.float64), (n,)
            ).copy()

        rep = BatchReport(
            n=n,
            values=named[("value",)],
            total_error=np.zeros(n),
            backend="vectorized",
        )
        for key, val in named.items():
            if key[0] == "grad":
                rep.gradients[key[1]] = val
            elif key[0] == "extra":
                if key[1] == "fp_error":
                    rep.total_error = val
                elif key[1].startswith("delta:"):
                    rep.per_variable[key[1][len("delta:"):]] = val
        self._add_input_errors(rep, args, batched, n)
        return rep

    def _add_input_errors(
        self,
        rep: BatchReport,
        args: Sequence[object],
        batched: List[str],
        n: int,
    ) -> None:
        # mirror of the scalar path: input variables are never assignment
        # targets, so their representation error is added host-side from
        # the final adjoints (Eq. 2 runs over inputs too)
        model = self.est.module.model
        primal = self.est.primal_ir
        for i, p in enumerate(primal.params):
            if p.name not in rep.gradients:
                continue
            if p.name in batched:
                values = np.asarray(args[i], dtype=np.float64)
            else:
                values = np.full(n, float(args[i]))  # type: ignore[arg-type]
            contrib = np.asarray(
                model.input_error_batch(
                    p.name, values, rep.gradients[p.name]
                ),
                dtype=np.float64,
            )
            if np.any(contrib != 0.0):
                rep.per_variable[p.name] = (
                    rep.per_variable.get(p.name, np.zeros(n)) + contrib
                )
                rep.total_error = rep.total_error + contrib

    # -- loop backend -------------------------------------------------------
    def _execute_loop_points(
        self, args: Sequence[object], batched: List[str], n: int
    ) -> List[ErrorReport]:
        primal = self.est.primal_ir
        reports: List[ErrorReport] = []
        for i in range(n):
            point: List[object] = []
            for a, p in zip(args, primal.params):
                if p.name in batched:
                    v = a[i]  # type: ignore[index]
                    point.append(
                        int(v) if p.type.dtype is DType.I64 else float(v)
                    )
                elif isinstance(a, np.ndarray):
                    # fresh copy per point: kernels may mutate array
                    # arguments in place
                    point.append(a.copy())
                else:
                    point.append(a)
            reports.append(self.est.execute(*point))
        return reports

    def _execute_loop(
        self, args: Sequence[object], batched: List[str], n: int
    ) -> BatchReport:
        reports = self._execute_loop_points(args, batched, n)
        per_vars = sorted({v for r in reports for v in r.per_variable})
        grads = sorted({g for r in reports for g in r.gradients})
        return BatchReport(
            n=n,
            values=np.asarray([r.value for r in reports]),
            total_error=np.asarray([r.total_error for r in reports]),
            per_variable={
                v: np.asarray(
                    [r.per_variable.get(v, 0.0) for r in reports]
                )
                for v in per_vars
            },
            gradients={
                g: np.stack(
                    [np.asarray(r.gradients[g]) for r in reports]
                )
                for g in grads
            },
            backend="loop",
        )


# --------------------------------------------------------------------------
# Config-batched estimation: K configurations × N input points
# --------------------------------------------------------------------------


@dataclass
class ConfigBatchReport:
    """Error-estimation results over a (configuration, input) grid.

    Mirrors :class:`BatchReport` with a leading **config-lane axis**:
    ``values``/``total_error`` are ``(K, N)``, ``per_variable`` and
    ``gradients`` map names to ``(K, N)`` (or ``(K, N, len)``) arrays.
    Per lane the numbers equal what a freshly built estimator of the
    demoted kernel reports at each input point.
    """

    k: int
    n: int
    values: np.ndarray
    total_error: np.ndarray
    per_variable: Dict[str, np.ndarray] = field(default_factory=dict)
    gradients: Dict[str, np.ndarray] = field(default_factory=dict)
    #: ``lanes`` (vectorized, compile-once) or ``loop`` (per config)
    backend: str = "lanes"
    #: per-variable error registers always present in a lane's report
    #: (host-added input contributions appear only where nonzero)
    register_vars: frozenset = frozenset()
    #: per-config reports when the loop backend produced the result
    _rows: Optional[List[BatchReport]] = None

    def report(self, lane: int) -> BatchReport:
        """The input-batch :class:`BatchReport` of configuration ``lane``."""
        if self._rows is not None:
            return self._rows[lane].copy()
        per_variable = {}
        for v, a in self.per_variable.items():
            row = np.array(a[lane])
            if v in self.register_vars or np.any(row != 0.0):
                per_variable[v] = row
        return BatchReport(
            n=self.n,
            values=np.array(self.values[lane]),
            total_error=np.array(self.total_error[lane]),
            per_variable=per_variable,
            gradients={
                g: np.array(a[lane]) for g, a in self.gradients.items()
            },
            backend="vectorized",
        )

    def worst(self) -> Tuple[int, int]:
        """(lane, sample) index of the largest total error."""
        flat = int(np.argmax(self.total_error))
        return flat // self.n, flat % self.n


class ConfigBatchedEstimator:
    """Config-batch execution façade over one :class:`ErrorEstimator`.

    The vectorized backend renders the estimator's *baseline* adjoint
    once in precision-parameterized (config-lane) form; per pool it
    regenerates each configuration's adjoint IR (transform + optimize,
    **no compilation**), pairs it structurally against the baseline,
    and reads the per-lane rounding selectors and constants (machine-
    epsilon factors etc.) off the paired nodes.  One numpy execution
    then covers all K configurations × N input points.  Pools or
    kernels the lane form cannot express fall back to one
    (memoized-compile) estimator per configuration — same numbers,
    just slower.
    """

    def __init__(self, est: "ErrorEstimator") -> None:
        self.est = est
        # frozenset(batched param names) -> ConfigLaneKernel | None
        self._kernels: Dict[frozenset, Optional[object]] = {}

    # -- kernel compilation (once per batched-set) --------------------------
    def _kernel(self, batched: frozenset):
        if batched not in self._kernels:
            from repro.codegen import runtime
            from repro.codegen.compile import config_lane_kernel
            from repro.codegen.npgen import UnvectorizableError

            adj = self.est.adjoint_ir
            bindings = {}
            for name, impl in self.est.module.bindings().items():
                bindings[name] = (
                    runtime.exactwise(impl) if callable(impl) else impl
                )
            try:
                self._kernels[batched] = config_lane_kernel(
                    adj,
                    batched=set(batched),
                    counting=False,
                    allow_arrays=False,
                    extra_bindings=bindings or None,
                    use_cache=not bindings,
                )
            except UnvectorizableError:
                self._kernels[batched] = None
        return self._kernels[batched]

    # -- pool lowering (per call) -------------------------------------------
    def _lower(self, kernel, configs: Sequence[object]):
        from repro.codegen.compile import lower_config_pool_zip
        from repro.core.api import build_adjoint
        from repro.core.estimation import ErrorEstimationModule
        from repro.tuning.config import apply_precision

        est = self.est
        variants = []
        for config in configs:
            mixed = (
                apply_precision(est.primal_ir, config)
                if config
                else est.primal_ir
            )
            module = ErrorEstimationModule(model=est.module.model)
            variants.append(
                build_adjoint(
                    mixed,
                    module,
                    opt_level=est.opt_level,
                    minimal_pushes=est.minimal_pushes,
                )
            )
        return lower_config_pool_zip(kernel.program, variants)

    # -- execution ----------------------------------------------------------
    def execute(
        self, configs: Sequence[object], *args: object
    ) -> ConfigBatchReport:
        from repro.codegen.compile import ConfigLoweringError

        est = self.est
        primal = est.primal_ir
        configs = list(configs)
        if not configs:
            raise ExecutionError(
                f"{primal.name}: empty configuration pool"
            )
        batched, n = _scan_sweep_args(primal, args)
        model = est.module.model
        kernel = None
        if (
            not est._runner.compiled.traces
            and model.cacheable
            and not any(
                isinstance(p.type, ArrayType) for p in primal.params
            )
        ):
            kernel = self._kernel(frozenset(batched))
        if kernel is not None:
            try:
                pool = self._lower(kernel, configs)
            except ConfigLoweringError:
                pool = None
            if pool is not None:
                return self._execute_lanes(
                    kernel, pool, configs, args, batched, n
                )
        return self._execute_loop(configs, args, n)

    # -- lanes backend ------------------------------------------------------
    def _execute_lanes(
        self,
        kernel,
        pool,
        configs: Sequence[object],
        args: Sequence[object],
        batched: List[str],
        n: int,
    ) -> ConfigBatchReport:
        est = self.est
        primal = est.primal_ir
        k = len(configs)
        full: List[object] = []
        for a, p in zip(args, primal.params):
            dt = p.type.dtype
            if p.name in batched:
                full.append(
                    np.asarray(
                        a,
                        dtype=np.int64 if dt is DType.I64 else np.float64,
                    )
                )
            elif dt is DType.I64:
                full.append(int(a))  # type: ignore[arg-type]
            elif dt.is_float:
                full.append(float(a))  # type: ignore[arg-type]
            else:
                full.append(a)
        result = kernel(pool, *full)
        if not isinstance(result, tuple):
            result = (result,)
        named: Dict[Tuple[str, ...], np.ndarray] = {}
        for key, val in zip(est.layout["ret_names"], result):
            named[tuple(key)] = np.broadcast_to(
                np.asarray(val, dtype=np.float64), (k, n)
            ).copy()
        rep = ConfigBatchReport(
            k=k,
            n=n,
            values=named[("value",)],
            total_error=np.zeros((k, n)),
            backend="lanes",
        )
        registers = set()
        for key, val in named.items():
            if key[0] == "grad":
                rep.gradients[key[1]] = val
            elif key[0] == "extra":
                if key[1] == "fp_error":
                    rep.total_error = val
                elif key[1].startswith("delta:"):
                    var = key[1][len("delta:"):]
                    rep.per_variable[var] = val
                    registers.add(var)
        rep.register_vars = frozenset(registers)
        self._add_input_errors(rep, args, batched, n)
        return rep

    def _add_input_errors(
        self,
        rep: ConfigBatchReport,
        args: Sequence[object],
        batched: List[str],
        n: int,
    ) -> None:
        # host-side mirror of the scalar/input-batched paths: inputs are
        # never assignment targets, so their representation error is
        # added from the final adjoints, per config lane (adding a zero
        # row is a bitwise no-op, matching the scalar path's gating)
        model = self.est.module.model
        primal = self.est.primal_ir
        for i, p in enumerate(primal.params):
            if p.name not in rep.gradients:
                continue
            if p.name in batched:
                values = np.asarray(args[i], dtype=np.float64)
            else:
                values = np.full(n, float(args[i]))  # type: ignore[arg-type]
            contrib = np.stack(
                [
                    np.asarray(
                        model.input_error_batch(
                            p.name, values, rep.gradients[p.name][lane]
                        ),
                        dtype=np.float64,
                    )
                    for lane in range(rep.k)
                ]
            )
            if np.any(contrib != 0.0):
                rep.per_variable[p.name] = (
                    rep.per_variable.get(p.name, np.zeros((rep.k, n)))
                    + contrib
                )
                rep.total_error = rep.total_error + contrib

    # -- loop backend -------------------------------------------------------
    def _execute_loop(
        self, configs: Sequence[object], args: Sequence[object], n: int
    ) -> ConfigBatchReport:
        from repro.core.api import cached_error_estimator, ErrorEstimator
        from repro.tuning.config import apply_precision

        est = self.est
        primal = est.primal_ir
        model = est.module.model
        rows: List[BatchReport] = []
        for config in configs:
            mixed = (
                apply_precision(primal, config) if config else primal
            )
            if model.cacheable and not est.module.track:
                sub = cached_error_estimator(
                    mixed,
                    model=model,
                    opt_level=est.opt_level,
                    minimal_pushes=est.minimal_pushes,
                )
            else:
                sub = ErrorEstimator(
                    mixed,
                    model=model,
                    track=est.module.track,
                    opt_level=est.opt_level,
                    minimal_pushes=est.minimal_pushes,
                )
            rows.append(sub.execute_batch(*args))
        k = len(rows)
        per_vars = sorted({v for r in rows for v in r.per_variable})
        grads = sorted({g for r in rows for g in r.gradients})
        return ConfigBatchReport(
            k=k,
            n=n,
            values=np.stack([r.values for r in rows]),
            total_error=np.stack([r.total_error for r in rows]),
            per_variable={
                v: np.stack(
                    [
                        np.asarray(
                            r.per_variable.get(v, np.zeros(n))
                        )
                        for r in rows
                    ]
                )
                for v in per_vars
            },
            gradients={
                g: np.stack([np.asarray(r.gradients[g]) for r in rows])
                for g in grads
            },
            backend="loop",
            _rows=rows,
        )
