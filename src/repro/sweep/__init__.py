"""Batched input-sweep engine (beyond the paper).

The paper's Discussion concedes that error estimates — and the
mixed-precision configurations derived from them — are input-dependent,
and defers to callers to "sweep inputs".  This subsystem makes that
sweep a first-class, fast operation:

* :mod:`~repro.sweep.batch` — evaluate a compiled error-estimating
  adjoint over N input points at once (NumPy array-at-a-time backend
  with a transparent scalar-loop fallback),
* :mod:`~repro.sweep.samplers` — grid / seeded-random / explicit input
  distributions,
* :mod:`~repro.sweep.cache` — content-addressed result cache (memory +
  disk) keyed by IR hash, model, and input digest,
* :mod:`~repro.sweep.aggregate` — max / mean / percentile reduction of
  per-point results into distribution statistics,
* :mod:`~repro.sweep.engine` — the :func:`sweep_error` orchestration
  entry point.

Distribution-robust mixed-precision tuning on top of this lives in
:func:`repro.tuning.robust_tune`.
"""

from repro.sweep.aggregate import (
    SweepSummary,
    resolve_aggregator,
    summarize,
)
from repro.sweep.batch import (
    BatchedErrorEstimator,
    BatchReport,
    ConfigBatchedEstimator,
    ConfigBatchReport,
)
from repro.sweep.cache import SweepCache, digest_inputs, make_key
from repro.sweep.engine import build_args, sweep_error
from repro.sweep.samplers import explicit_sweep, grid_sweep, random_sweep

__all__ = [
    "BatchReport",
    "BatchedErrorEstimator",
    "ConfigBatchReport",
    "ConfigBatchedEstimator",
    "SweepCache",
    "SweepSummary",
    "build_args",
    "digest_inputs",
    "explicit_sweep",
    "grid_sweep",
    "make_key",
    "random_sweep",
    "resolve_aggregator",
    "summarize",
    "sweep_error",
]
