"""Content-addressed sweep result cache.

Repeated error estimates over the same inputs are the hot path of any
tuning search — a greedy/robust tuning loop, a threshold scan, a CI
re-run.  The cache keys a :class:`~repro.sweep.batch.BatchReport` by
*everything that determines it*:

* the **IR fingerprint** of the primal kernel (content hash — covers
  precision configurations, inlined callees, re-registered kernels),
* the **error model fingerprint** (class + parameters; models closing
  over arbitrary callables are uncacheable),
* the estimator options (``opt_level``, ``minimal_pushes``) — they do
  not change results in theory, but they change the generated code, so
  they are keyed defensively,
* the **input digest**: shapes, dtypes, and raw bytes of every
  argument.

Entries live in an in-process LRU and, optionally, in a directory of
pickle files so results survive across processes (set ``directory=`` or
the ``REPRO_SWEEP_CACHE`` environment variable).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.models import ErrorModel
from repro.ir import nodes as N
from repro.ir.fingerprint import ir_fingerprint
from repro.sweep.batch import BatchReport

#: pickle protocol pinned for cross-version disk compatibility
_PICKLE_PROTOCOL = 4


def digest_inputs(args: Sequence[object]) -> str:
    """SHA-256 digest of a positional argument tuple."""
    h = hashlib.sha256()
    for a in args:
        if isinstance(a, np.ndarray):
            arr = np.ascontiguousarray(a)
            h.update(b"A")
            h.update(str(arr.dtype).encode())
            h.update(repr(arr.shape).encode())
            h.update(arr.tobytes())
        elif isinstance(a, np.generic):
            # numpy scalars (np.int64 sizes, np.float64 bounds) digest
            # by value, same key as the equivalent Python scalar
            h.update(b"S")
            h.update(repr(a.item()).encode())
        elif isinstance(a, (bool, int, float)):
            h.update(b"S")
            h.update(repr(a).encode())
        elif isinstance(a, (list, tuple)):
            arr = np.asarray(a)
            h.update(b"L")
            h.update(str(arr.dtype).encode())
            h.update(repr(arr.shape).encode())
            h.update(arr.tobytes())
        else:
            raise TypeError(
                f"cannot digest argument of type {type(a).__name__}"
            )
    return h.hexdigest()


def make_key(
    primal: N.Function,
    model: ErrorModel,
    args: Sequence[object],
    opt_level: int = 2,
    minimal_pushes: bool = True,
) -> Optional[str]:
    """Cache key for one sweep evaluation, or ``None`` if uncacheable."""
    if not model.cacheable:
        return None
    h = hashlib.sha256()
    h.update(ir_fingerprint(primal).encode())
    h.update(b"|")
    h.update(model.fingerprint().encode())
    h.update(f"|{opt_level}|{int(minimal_pushes)}|".encode())
    h.update(digest_inputs(args).encode())
    return h.hexdigest()


class SweepCache:
    """Two-level (memory + optional disk) cache of batch reports."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_entries: int = 128,
    ) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_SWEEP_CACHE") or None
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.memory_entries = memory_entries
        self._mem: "OrderedDict[str, BatchReport]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- internals ----------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.pkl"

    def _remember(self, key: str, report: BatchReport) -> None:
        self._mem[key] = report
        self._mem.move_to_end(key)
        while len(self._mem) > self.memory_entries:
            self._mem.popitem(last=False)

    # -- public -------------------------------------------------------------
    def get(self, key: Optional[str]) -> Optional[BatchReport]:
        """Look up a report; counts a hit or miss (``None`` key: miss)."""
        if key is None:
            self.misses += 1
            return None
        rep = self._mem.get(key)
        if rep is None and self.directory is not None:
            path = self._path(key)
            if path.exists():
                try:
                    with open(path, "rb") as f:
                        rep = BatchReport.from_dict(pickle.load(f))
                except (OSError, pickle.PickleError, KeyError, EOFError):
                    rep = None  # corrupt entry: treat as miss
                if rep is not None:
                    self._remember(key, rep)
        if rep is None:
            self.misses += 1
            return None
        self.hits += 1
        self._mem.move_to_end(key)
        out = rep.copy()
        out.from_cache = True
        return out

    def put(self, key: Optional[str], report: BatchReport) -> None:
        if key is None:
            return
        # stored copy: the caller keeps (and may mutate) its own object
        self._remember(key, report.copy())
        if self.directory is not None:
            path = self._path(key)
            # atomic-ish write: concurrent sweeps must never observe a
            # torn pickle
            fd, tmp = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(
                        report.to_dict(), f, protocol=_PICKLE_PROTOCOL
                    )
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def clear(self) -> None:
        """Drop memory entries (disk entries are left in place)."""
        self._mem.clear()

    def __len__(self) -> int:
        return len(self._mem)

    @property
    def stats(self) -> str:
        return f"hits={self.hits} misses={self.misses}"
