"""Content-addressed sweep result cache.

Repeated error estimates over the same inputs are the hot path of any
tuning search — a greedy/robust tuning loop, a threshold scan, a CI
re-run.  The cache keys a :class:`~repro.sweep.batch.BatchReport` by
*everything that determines it*:

* the **IR fingerprint** of the primal kernel (content hash — covers
  precision configurations, inlined callees, re-registered kernels),
* the **error model fingerprint** (class + parameters; models closing
  over arbitrary callables are uncacheable),
* the estimator options (``opt_level``, ``minimal_pushes``) — they do
  not change results in theory, but they change the generated code, so
  they are keyed defensively,
* the **input digest**: shapes, dtypes, and raw bytes of every
  argument.

Entries live in an in-process LRU and, optionally, in a directory of
pickle files so results survive across processes (set ``directory=`` or
the ``REPRO_SWEEP_CACHE`` environment variable).  The disk tier is
LRU-bounded (``max_disk_bytes`` / ``max_disk_entries``, or the
``REPRO_SWEEP_CACHE_BYTES`` environment variable) so long search runs
cannot grow it without bound; :meth:`SweepCache.cache_stats` reports
hit/miss/eviction counters and current occupancy.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.models import ErrorModel
from repro.ir import nodes as N
from repro.ir.fingerprint import ir_fingerprint
from repro.obs import metrics as obs_metrics
from repro.sweep.batch import BatchReport
from repro.util import atomio
from repro.util.retry import DEFAULT_IO_POLICY
from repro.util.errors import InputError

#: pickle protocol pinned for cross-version disk compatibility
_PICKLE_PROTOCOL = 4

# process-wide mirrors of the per-instance counters: each SweepCache
# keeps its own exact counts (cache_stats() is instance-scoped), and
# every event is also folded into the shared registry so one
# /v1/metrics view covers all caches in the process
_SC_HITS = obs_metrics.REGISTRY.counter(
    "repro_sweep_cache_hits_total", "sweep cache hits (all instances)"
)
_SC_MISSES = obs_metrics.REGISTRY.counter(
    "repro_sweep_cache_misses_total", "sweep cache misses (all instances)"
)
_SC_EVICTIONS = obs_metrics.REGISTRY.counter(
    "repro_sweep_cache_evictions_total", "sweep cache disk evictions"
)
_SC_CORRUPT = obs_metrics.REGISTRY.counter(
    "repro_sweep_cache_corrupt_evictions_total",
    "corrupt sweep-cache entries quarantined on read",
)
_SC_READ_FAILURES = obs_metrics.REGISTRY.counter(
    "repro_sweep_cache_read_failures_total",
    "disk-tier reads that failed after retries (degraded to miss)",
)
_SC_WRITE_FAILURES = obs_metrics.REGISTRY.counter(
    "repro_sweep_cache_write_failures_total",
    "disk-tier writes that failed after retries (entry not persisted)",
)


def _bad_element_index(seq: Sequence[object]) -> int:
    """First element of a rejected sequence that breaks uniformity.

    Used only to build error messages: the offending element is one
    that is ``None``, non-numeric, or shape-mismatched against the
    first element."""
    shape = None
    for i, el in enumerate(seq):
        if el is None or isinstance(el, (str, bytes)):
            return i
        try:
            arr = np.asarray(el, dtype=np.float64)
        except (TypeError, ValueError):
            return i
        if shape is None:
            shape = arr.shape
        elif arr.shape != shape:
            return i
    return 0


def _sequence_array(a: Sequence[object]) -> np.ndarray:
    """A list/tuple argument as a digestible uniform numeric array.

    :raises InputError: (a :class:`TypeError`) for ragged nesting, ``None`` elements, or any
        non-numeric content — naming the offending index instead of
        leaking raw numpy errors (``tobytes`` on an object array) or
        silently coercing.
    """
    try:
        arr = np.asarray(a)
    except (TypeError, ValueError):
        arr = None  # ragged nesting (numpy >= 1.24 raises directly)
    if arr is None or arr.dtype.kind not in "biuf":
        idx = _bad_element_index(a)
        raise InputError(
            f"cannot digest sequence argument: element {idx} "
            f"({type(a[idx]).__name__}: {a[idx]!r}) breaks uniform "
            f"numeric shape/dtype"
        )
    return arr


def digest_inputs(args: Sequence[object]) -> str:
    """SHA-256 digest of a positional argument tuple.

    :raises InputError: (a :class:`TypeError`) for undigestible arguments — unsupported types,
        and list/tuple arguments with ragged nesting, ``None``, or
        non-numeric elements (the offending index is named).
    """
    h = hashlib.sha256()
    for a in args:
        if isinstance(a, np.ndarray):
            arr = np.ascontiguousarray(a)
            h.update(b"A")
            h.update(str(arr.dtype).encode())
            h.update(repr(arr.shape).encode())
            h.update(arr.tobytes())
        elif isinstance(a, np.generic):
            # numpy scalars (np.int64 sizes, np.float64 bounds) digest
            # by value, same key as the equivalent Python scalar
            h.update(b"S")
            h.update(repr(a.item()).encode())
        elif isinstance(a, (bool, int, float)):
            h.update(b"S")
            h.update(repr(a).encode())
        elif isinstance(a, (list, tuple)):
            arr = _sequence_array(a)
            h.update(b"L")
            h.update(str(arr.dtype).encode())
            h.update(repr(arr.shape).encode())
            h.update(arr.tobytes())
        else:
            raise InputError(
                f"cannot digest argument of type {type(a).__name__}"
            )
    return h.hexdigest()


def make_key(
    primal: N.Function,
    model: ErrorModel,
    args: Sequence[object],
    opt_level: int = 2,
    minimal_pushes: bool = True,
) -> Optional[str]:
    """Cache key for one sweep evaluation, or ``None`` if uncacheable."""
    if not model.cacheable:
        return None
    h = hashlib.sha256()
    h.update(ir_fingerprint(primal).encode())
    h.update(b"|")
    h.update(model.fingerprint().encode())
    h.update(f"|{opt_level}|{int(minimal_pushes)}|".encode())
    h.update(digest_inputs(args).encode())
    return h.hexdigest()


class SweepCache:
    """Two-level (memory + optional disk) cache of batch reports."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_entries: int = 128,
        max_disk_bytes: Optional[int] = None,
        max_disk_entries: Optional[int] = None,
        fsync: bool = False,
    ) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_SWEEP_CACHE") or None
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        if max_disk_bytes is None:
            env = os.environ.get("REPRO_SWEEP_CACHE_BYTES")
            max_disk_bytes = int(env) if env else None
        self.memory_entries = memory_entries
        self.max_disk_bytes = max_disk_bytes
        self.max_disk_entries = max_disk_entries
        self.fsync = bool(fsync)
        self._mem: "OrderedDict[str, BatchReport]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: corrupt/truncated disk entries quarantined on read
        self.corrupt_evictions = 0
        #: disk reads/writes that failed after retries (degraded)
        self.read_failures = 0
        self.write_failures = 0
        #: running (bytes, entries) estimate of the disk tier; None
        #: until the first authoritative scan.  Kept incrementally so
        #: puts under the caps never rescan the directory; overwrites
        #: overcount conservatively (the next eviction scan corrects)
        self._disk_usage = None
        # reconcile immediately: opening a capped cache over an
        # already-oversized directory trims it to the caps
        self._evict_disk()

    # -- internals ----------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.pkl"

    def _disk_entries(self):
        """Disk entries oldest-access first: ``[(path, mtime, size)]``."""
        if self.directory is None:
            return []
        entries = []
        for p in self.directory.glob("*.pkl"):
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((p, st.st_mtime, st.st_size))
        # mtime tracks last access (refreshed on hit); path breaks ties
        # deterministically
        entries.sort(key=lambda e: (e[1], str(e[0])))
        return entries

    def _over_caps(self, total: int, count: int) -> bool:
        return (
            self.max_disk_bytes is not None and total > self.max_disk_bytes
        ) or (
            self.max_disk_entries is not None
            and count > self.max_disk_entries
        )

    def _evict_disk(self) -> None:
        """Enforce the disk caps by dropping least-recently-used files.

        Authoritative: rescans the directory and refreshes the running
        usage estimate."""
        if self.directory is None or (
            self.max_disk_bytes is None and self.max_disk_entries is None
        ):
            return
        entries = self._disk_entries()
        total = sum(size for _, _, size in entries)
        count = len(entries)
        for path, _, size in entries:
            if not self._over_caps(total, count):
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            count -= 1
            self.evictions += 1
            _SC_EVICTIONS.inc()
        self._disk_usage = (total, count)

    def _note_disk_put(self, path: Path) -> None:
        """Account one written file; evict only when the running
        estimate crosses the caps (no per-put directory scan)."""
        if self.max_disk_bytes is None and self.max_disk_entries is None:
            return
        if self._disk_usage is None:
            self._evict_disk()
            return
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        total, count = self._disk_usage
        self._disk_usage = (total + size, count + 1)
        if self._over_caps(*self._disk_usage):
            self._evict_disk()

    def _remember(self, key: str, report: BatchReport) -> None:
        self._mem[key] = report
        self._mem.move_to_end(key)
        while len(self._mem) > self.memory_entries:
            self._mem.popitem(last=False)

    # -- public -------------------------------------------------------------
    def get(self, key: Optional[str]) -> Optional[BatchReport]:
        """Look up a report; counts a hit or miss (``None`` key: miss)."""
        if key is None:
            self.misses += 1
            _SC_MISSES.inc()
            return None
        rep = self._mem.get(key)
        if (
            rep is not None
            and self.directory is not None
            and (
                self.max_disk_bytes is not None
                or self.max_disk_entries is not None
            )
        ):
            # a memory-tier hit is still a *use*: refresh the disk
            # twin's mtime so LRU eviction doesn't drop hot entries it
            # never sees being read (only relevant under the caps)
            try:
                os.utime(self._path(key), None)
            except OSError:
                pass
        if rep is None and self.directory is not None:
            path = self._path(key)
            if path.exists():
                try:
                    blob = atomio.read_bytes(
                        path,
                        checked=True,
                        site="cache.read",
                        retry=DEFAULT_IO_POLICY,
                    )
                    rep = BatchReport.from_dict(pickle.loads(blob))
                except FileNotFoundError:
                    rep = None  # lost a race with an eviction: a miss
                except (
                    atomio.CorruptPayloadError,
                    pickle.PickleError, KeyError, EOFError,
                    ValueError,  # truncated/garbled protocol header
                ):
                    # corrupt/truncated entry (e.g. a crash mid-write
                    # outside this cache's atomic protocol): treat as
                    # a miss and *quarantine* the file — it cannot
                    # shadow the fresh result about to be recomputed,
                    # and the evidence survives for forensics
                    rep = None
                    self.corrupt_evictions += 1
                    _SC_CORRUPT.inc()
                    atomio.quarantine(path, "corrupt sweep-cache entry")
                except OSError:
                    # unreadable after bounded retries: degrade to a
                    # recompute (a cache must never fail its caller)
                    rep = None
                    self.read_failures += 1
                    _SC_READ_FAILURES.inc()
                if rep is not None:
                    self._remember(key, rep)
                    try:
                        # refresh recency so LRU eviction spares hot
                        # entries
                        os.utime(path, None)
                    except OSError:
                        pass
        if rep is None:
            self.misses += 1
            _SC_MISSES.inc()
            return None
        self.hits += 1
        _SC_HITS.inc()
        self._mem.move_to_end(key)
        out = rep.copy()
        out.from_cache = True
        return out

    def put(self, key: Optional[str], report: BatchReport) -> None:
        if key is None:
            return
        # stored copy: the caller keeps (and may mutate) its own object
        self._remember(key, report.copy())
        if self.directory is not None:
            path = self._path(key)
            data = pickle.dumps(
                report.to_dict(), protocol=_PICKLE_PROTOCOL
            )
            try:
                # atomic + checksummed: concurrent sweeps must never
                # observe a torn pickle, and a torn page that survives
                # the rename is caught by the read-side verification
                atomio.atomic_write(
                    path,
                    data,
                    checksum=True,
                    fsync=self.fsync,
                    site="cache.write",
                    retry=DEFAULT_IO_POLICY,
                )
            except OSError:
                # a cache write failure is not an error for the
                # caller (the result is still returned) — just a
                # future miss, counted for the degradation signal
                self.write_failures += 1
                _SC_WRITE_FAILURES.inc()
            else:
                self._note_disk_put(path)

    def clear(self) -> None:
        """Drop memory entries (disk entries are left in place)."""
        self._mem.clear()

    def __len__(self) -> int:
        return len(self._mem)

    def cache_stats(self) -> dict:
        """Counters and occupancy of both tiers, as a plain dict."""
        entries = self._disk_entries()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_evictions": self.corrupt_evictions,
            "read_failures": self.read_failures,
            "write_failures": self.write_failures,
            "memory_entries": len(self._mem),
            "disk_entries": len(entries),
            "disk_bytes": sum(size for _, _, size in entries),
            "max_disk_bytes": self.max_disk_bytes,
            "max_disk_entries": self.max_disk_entries,
        }

    @property
    def stats(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions}"
        )
