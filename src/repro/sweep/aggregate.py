"""Aggregation of per-point sweep results into distribution statistics.

A sweep answers "what is the error *at these N points*"; a tuning
decision needs one number per variable.  :func:`summarize` reduces a
:class:`~repro.sweep.batch.BatchReport` along the batch axis with a
named aggregator:

* ``"max"`` — worst case over the distribution (the conservative choice
  for threshold-driven tuning, and the default of ``robust_tune``),
* ``"mean"`` — expected error,
* ``"p<q>"`` (e.g. ``"p95"``) or ``("percentile", q)`` — tail quantile,
* any callable ``(np.ndarray) -> float``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple, Union

import numpy as np

from repro.sweep.batch import BatchReport
from repro.util.errors import ConfigError

Aggregator = Callable[[np.ndarray], float]
AggregatorSpec = Union[str, Tuple[str, float], Aggregator]


def resolve_aggregator(how: AggregatorSpec) -> Tuple[str, Aggregator]:
    """Resolve an aggregator spec into ``(name, callable)``."""
    if callable(how):
        return getattr(how, "__name__", "custom"), lambda a: float(how(a))
    if isinstance(how, tuple):
        kind, q = how
        if kind != "percentile":
            raise ConfigError(f"unknown aggregator tuple {how!r}")
        qf = float(q)
        return f"p{qf:g}", lambda a: float(np.percentile(a, qf))
    if how == "max":
        return "max", lambda a: float(np.max(a))
    if how == "mean":
        return "mean", lambda a: float(np.mean(a))
    if isinstance(how, str) and how.startswith("p"):
        try:
            qf = float(how[1:])
        except ValueError:
            raise ConfigError(f"unknown aggregator {how!r}") from None
        if not 0.0 <= qf <= 100.0:
            raise ConfigError(f"percentile out of range: {how!r}")
        return f"p{qf:g}", lambda a: float(np.percentile(a, qf))
    raise ConfigError(f"unknown aggregator {how!r}")


@dataclass
class SweepSummary:
    """Distribution statistics of one sweep."""

    #: aggregator name (``max``, ``mean``, ``p95``, ...)
    how: str
    #: number of samples aggregated
    n: int
    #: aggregated total error
    total_error: float
    #: aggregated per-variable contributions
    per_variable: Dict[str, float] = field(default_factory=dict)
    #: index of the sample with the largest total error
    worst_index: int = 0

    def dominant_variables(self, k: int = 5) -> list:
        """The ``k`` variables with the largest aggregated contributions."""
        return [
            v
            for v, _ in sorted(
                self.per_variable.items(),
                key=lambda kv: kv[1],
                reverse=True,
            )[:k]
        ]

    def __str__(self) -> str:
        lines = [
            f"SweepSummary(n={self.n}, {self.how} total_error="
            f"{self.total_error:.6g})"
        ]
        for v, e in sorted(
            self.per_variable.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {self.how} delta[{v}] = {e:.6g}")
        return "\n".join(lines)


def summarize(
    report: BatchReport, how: AggregatorSpec = "max"
) -> SweepSummary:
    """Reduce a batch report along the sample axis."""
    name, agg = resolve_aggregator(how)
    return SweepSummary(
        how=name,
        n=report.n,
        total_error=agg(np.asarray(report.total_error)),
        per_variable={
            v: agg(np.asarray(a)) for v, a in report.per_variable.items()
        },
        worst_index=report.worst(),
    )
