"""The unified ``python -m repro`` command line.

One CLI over the whole workflow, each subcommand a thin shell around
one :class:`repro.session.Session` method:

======== ====================================================== =
command  what it does
======== ====================================================== =
estimate one-point FP error estimate of an app kernel
sweep    batched error estimate over the app's input distribution
tune     greedy / distribution-robust mixed-precision tuning
analyze  static precision analysis: ranges, sensitivity, kernel lint
search   cost-aware Pareto precision search (durable with --store)
plan     multi-scenario search plans through the orchestrator
runs     run-store management: list / compare / prune / diff
serve    long-lived HTTP/JSON job server over one shared session
trace    summarize a JSONL trace file into a per-phase profile
======== ====================================================== =

Examples::

    python -m repro estimate --kernel blackscholes
    python -m repro sweep --kernel simpsons --aggregate p95
    python -m repro tune --kernel blackscholes --threshold 1e-6 --robust
    python -m repro analyze simpsons --json
    python -m repro search --kernel kmeans --budget 32 --store runs/
    python -m repro search --kernel blackscholes --trace run.trace.jsonl
    python -m repro plan --all --store runs/ --resume
    python -m repro runs --store runs/ --compare
    python -m repro runs --store runs/ --prune --incomplete
    python -m repro serve --store runs/ --port 8321 --workers 2
    python -m repro trace --summarize run.trace.jsonl

``python -m repro.search`` remains as a deprecated alias of the
``search`` subcommand (removal in 2.0).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.util.errors import ConfigError, ReproError

_MODELS = ("taylor", "adapt")


def _scenarios():
    from repro.search.orchestrator import app_scenarios

    return app_scenarios()


def _print_scenarios() -> None:
    print("available scenarios:")
    for name, mod in sorted(_scenarios().items()):
        scen = mod.search_scenario()
        print(
            f"  {name:14s} kernel={scen.kernel.ir.name:14s} "
            f"threshold={scen.threshold:g} "
            f"candidates={len(scen.candidates)}"
        )


def _load_scenario(args):
    """The app scenario named by ``--kernel``, or ``None`` + exit code."""
    scenarios = _scenarios()
    if getattr(args, "list", False) or not args.kernel:
        _print_scenarios()
        return None, (0 if getattr(args, "list", False) else 2)
    if args.kernel not in scenarios:
        print(
            f"unknown kernel {args.kernel!r} "
            f"(available: {sorted(scenarios)})",
            file=sys.stderr,
        )
        return None, 2
    return scenarios[args.kernel].search_scenario(), 0


def _session_for(args):
    from repro.session import Session, SessionConfig

    config = SessionConfig(
        seed=getattr(args, "seed", 0),
        workers=getattr(args, "workers", 0),
        strategies=tuple(
            s
            for s in getattr(args, "strategies", "").split(",")
            if s
        )
        or SessionConfig().strategies,
        fault_plan=getattr(args, "faults", None),
    )
    return Session(
        config,
        cache=getattr(args, "cache", None),
        store=getattr(args, "store", None),
    )


def _model_instance(name: Optional[str]):
    if name is None or name == "taylor":
        return None  # each method's historical default
    from repro.core.models import AdaptModel

    return AdaptModel()


def _write_json(args, payload: Dict[str, object]) -> None:
    if getattr(args, "json", None) is not None:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")


# -- estimate -----------------------------------------------------------------


def cmd_estimate(args) -> int:
    scen, code = _load_scenario(args)
    if scen is None:
        return code
    if args.point < 0 or args.point >= len(scen.points):
        print(
            f"--point {args.point} out of range "
            f"(scenario has {len(scen.points)} validation points)",
            file=sys.stderr,
        )
        return 2
    sess = _session_for(args)
    point = scen.points[args.point]
    report = sess.estimate_at(
        scen.kernel, point, model=_model_instance(args.model)
    )
    name = scen.kernel.ir.name
    print(f"estimate({name}) at validation point {args.point}:")
    print(f"  value       = {report.value:.17g}")
    print(f"  total error = {report.total_error:.6g}")
    print("  per-variable contributions:")
    for var, err in sorted(
        report.per_variable.items(), key=lambda kv: -abs(kv[1])
    ):
        print(f"    delta[{var:>12s}] = {err:.6g}")
    _write_json(
        args,
        {
            "kernel": name,
            "point": args.point,
            "value": report.value,
            "total_error": report.total_error,
            "per_variable": dict(report.per_variable),
        },
    )
    return 0


# -- sweep --------------------------------------------------------------------


def cmd_sweep(args) -> int:
    from repro.sweep.aggregate import resolve_aggregator

    scen, code = _load_scenario(args)
    if scen is None:
        return code
    if scen.samples is None:
        print(
            f"scenario {args.kernel!r} has no input sweep",
            file=sys.stderr,
        )
        return 2
    agg_name, agg = resolve_aggregator(args.aggregate)
    sess = _session_for(args)
    rep = sess.sweep(
        scen.kernel,
        scen.samples,
        fixed=scen.fixed,
        model=_model_instance(args.model),
    )
    name = scen.kernel.ir.name
    total = float(agg(np.asarray(rep.total_error)))
    print(
        f"sweep({name}): N={rep.n} backend={rep.backend} "
        f"cached={rep.from_cache}"
    )
    print(f"  total error [{agg_name}] = {total:.6g}")
    print("  per-variable contributions:")
    rows = sorted(
        (
            (v, float(agg(np.asarray(a))))
            for v, a in rep.per_variable.items()
        ),
        key=lambda kv: -abs(kv[1]),
    )
    for var, err in rows:
        print(f"    delta[{var:>12s}] [{agg_name}] = {err:.6g}")
    _write_json(
        args,
        {
            "kernel": name,
            "n": rep.n,
            "backend": rep.backend,
            "aggregate": agg_name,
            "total_error": total,
            "per_variable": dict(rows),
        },
    )
    return 0


# -- tune ---------------------------------------------------------------------


def cmd_tune(args) -> int:
    # flags only meaningful in one mode are rejected in the other —
    # silently dropping them would tune something else than asked
    if args.robust and args.point is not None:
        args.parser.error("--point applies to point mode (omit --robust)")
    if not args.robust and args.aggregate is not None:
        args.parser.error("--aggregate applies to robust mode (add --robust)")
    scen, code = _load_scenario(args)
    if scen is None:
        return code
    threshold = (
        args.threshold if args.threshold is not None else scen.threshold
    )
    sess = _session_for(args)
    if args.robust:
        if scen.samples is None:
            print(
                f"--robust: scenario {args.kernel!r} has no input sweep",
                file=sys.stderr,
            )
            return 2
        aggregate = args.aggregate or "max"
        result = sess.tune(
            scen.kernel,
            threshold,
            samples=scen.samples,
            fixed=scen.fixed,
            aggregate=aggregate,
        )
        mode = f"robust [{aggregate}]"
    else:
        point = args.point if args.point is not None else 0
        if point < 0 or point >= len(scen.points):
            print(
                f"--point {point} out of range "
                f"(scenario has {len(scen.points)} validation points)",
                file=sys.stderr,
            )
            return 2
        result = sess.tune(
            scen.kernel, threshold, args=scen.points[point]
        )
        mode = f"point {point}"
    name = scen.kernel.ir.name
    print(
        f"tune({name}): {mode}, threshold {threshold:g}"
    )
    print(
        f"  configuration   = "
        f"{result.config.describe() or '(uniform f64)'}"
    )
    print(f"  estimated error = {result.estimated_error:.6g}")
    print("  contribution ranking (ascending):")
    for var, err in result.ranking:
        mark = "demoted" if var in result.demoted else ""
        print(f"    {var:>14s}  {err:.6g}  {mark}")
    _write_json(
        args,
        {
            "kernel": name,
            "threshold": threshold,
            "mode": mode,
            "demoted": list(result.demoted),
            "estimated_error": result.estimated_error,
            "ranking": [[v, e] for v, e in result.ranking],
        },
    )
    return 0


# -- analyze ------------------------------------------------------------------


def cmd_analyze(args) -> int:
    scenarios = _scenarios()
    if args.list or not args.kernel:
        _print_scenarios()
        return 0 if args.list else 2
    if args.kernel not in scenarios:
        print(
            f"unknown kernel {args.kernel!r} "
            f"(available: {sorted(scenarios)})",
            file=sys.stderr,
        )
        return 2
    sess = _session_for(args)
    kwargs: Dict[str, object] = {}
    if args.demote_to is not None:
        from repro.ir.types import DType

        kwargs["demote_to"] = DType(args.demote_to)
    report = sess.analyze(
        args.kernel, threshold=args.threshold, **kwargs
    )
    if args.json == "-":
        # bare --json: the report is the output — keep stdout pure
        # JSON so it pipes into jq and the golden-schema tests
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    print(report.render())
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    return 0


# -- search -------------------------------------------------------------------


def _print_search_stats(result) -> None:
    stats = result.stats or {}
    ev = stats.get("evaluator", {})
    if ev:
        mode = ev.get("pool_mode") or "off (per-candidate)"
        print(
            f"evaluator: computed={ev.get('computed')} "
            f"memo_hits={ev.get('memo_hits')} "
            f"config_batch={mode} "
            f"pool_runs={ev.get('pool_runs')} "
            f"pool_lanes={ev.get('pool_lanes')} "
            f"pool_fallbacks={ev.get('pool_fallbacks')}"
        )
    memo = stats.get("estimator_memo", {})
    if memo:
        print(
            f"estimator memo: entries={memo.get('entries')} "
            f"capacity={memo.get('capacity')}"
        )
    kern = stats.get("config_kernel_cache", {})
    if kern:
        print(
            f"kernel cache: entries={kern.get('entries')} "
            f"hits={kern.get('hits')} misses={kern.get('misses')} "
            f"unvectorizable={kern.get('unvectorizable')}"
        )
    sweep = stats.get("sweep_cache")
    if sweep is not None:
        print(
            f"sweep cache: hits={sweep.get('hits')} "
            f"misses={sweep.get('misses')} "
            f"evictions={sweep.get('evictions')} "
            f"disk_entries={sweep.get('disk_entries')} "
            f"disk_bytes={sweep.get('disk_bytes')}"
        )
    rs = stats.get("run_store")
    if rs is not None:
        print(
            f"run store: run={str(rs.get('run_id'))[:12]} "
            f"restored={rs.get('restored')} "
            f"computed={rs.get('computed')} "
            f"checkpoints={rs.get('checkpoints')} "
            f"[{rs.get('root')}]"
        )


def _run_plan(args) -> int:
    """Orchestrator mode (``plan`` subcommand, or legacy
    ``search --plan``/``search --all``)."""
    sess = _session_for(args)
    defaults: Dict[str, object] = {}
    if args.budget is not None:
        defaults["budget"] = args.budget
    if args.threshold is not None:
        defaults["threshold"] = args.threshold
    if args.plan is not None:
        orch = sess.plan(plan_file=args.plan, resume=args.resume)
        # CLI flags fill in whatever the plan's defaults leave unset
        # (plan-file defaults and per-entry overrides win)
        for key, value in defaults.items():
            orch.defaults.setdefault(key, value)
    else:
        orch = sess.plan(
            all_apps=True, resume=args.resume, defaults=defaults
        )
    orch.run()
    print(orch.report())
    _write_json(args, orch.to_dict())
    return 0 if orch.ok else 1


def cmd_search(args) -> int:
    from repro.obs import trace as obs_trace

    if args.resume and not args.store:
        args.parser.error("--resume requires --store")
    if (args.plan or args.all) and not args.store:
        args.parser.error("--plan/--all require --store")

    trace_path = getattr(args, "trace", None)
    if trace_path is not None:
        obs_trace.enable(trace_path)
    try:
        if args.plan or args.all:
            return _run_plan(args)

        scen, code = _load_scenario(args)
        if scen is None:
            return code
        sess = _session_for(args)
        overrides: Dict[str, object] = {}
        if args.budget is not None:
            overrides["budget"] = args.budget
        if args.threshold is not None:
            overrides["threshold"] = args.threshold
        if args.store is not None:
            overrides["resume"] = args.resume
        with obs_trace.span("cli.search", kernel=args.kernel):
            result = scen.run(session=sess, **overrides)
    finally:
        if trace_path is not None:
            obs_trace.disable()

    print(result.summary())
    _print_search_stats(result)
    if result.profile is not None:
        from repro.obs.profile import format_summary

        print(f"trace profile ({trace_path}):")
        print(format_summary(result.profile))
    _write_json(args, result.to_dict())
    ok = len(result.front) > 0 and result.front.is_consistent()
    return 0 if ok else 1


# -- runs ---------------------------------------------------------------------


def cmd_runs(args) -> int:
    from repro.search.store import RunStore
    from repro.session.runs import RunsView
    from repro.util.errors import ConfigError, StoreError

    if not args.prune and (
        args.max_age_days is not None
        or args.max_runs is not None
        or args.incomplete
        or args.dry_run
        or args.min_age_hours != 1.0
    ):
        args.parser.error(
            "--max-age-days/--max-runs/--incomplete/--dry-run/"
            "--min-age-hours require --prune"
        )
    if args.merge is None and not Path(args.store).is_dir():
        # RunStore() would mkdir — a read-only management command must
        # surface the typo'd path instead of materializing it
        # (--merge is the exception: merging into a fresh store is a
        # legitimate way to build one)
        print(
            f"error: run store {args.store!r} does not exist",
            file=sys.stderr,
        )
        return 2
    if args.merge is not None:
        missing = [s for s in args.merge if not Path(s).is_dir()]
        if missing:
            print(
                f"error: merge source store(s) do not exist: "
                f"{missing}",
                file=sys.stderr,
            )
            return 2
    view = RunsView(RunStore(args.store))
    try:
        if args.merge is not None:
            report = view.merge(args.merge)
            print(view.format_merge(report))
            _write_json(args, report.to_dict())
        elif args.diff is not None:
            diff = view.diff(*args.diff)
            print(view.format_diff(diff))
            _write_json(args, diff)
        elif args.prune:
            pruned = view.prune(
                max_age_days=args.max_age_days,
                max_runs=args.max_runs,
                incomplete=args.incomplete,
                dry_run=args.dry_run,
                min_age_hours=args.min_age_hours,
            )
            print(view.format_prune(pruned, dry_run=args.dry_run))
            _write_json(args, {"pruned": pruned})
        elif args.compare is not None:
            rows = view.compare(args.compare or None)
            print(view.format_compare(rows))
            _write_json(args, {"runs": rows})
        else:
            manifests = view.list()
            print(view.format_list(manifests))
            _write_json(args, {"runs": manifests})
    except (ConfigError, StoreError) as exc:
        # bad arguments (unknown/ambiguous run id, missing prune
        # criterion, diffing an incomplete run) — a usage error, not an
        # execution failure
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


# -- dist ---------------------------------------------------------------------


def cmd_dist(args) -> int:
    """Bare ``repro dist`` (no action): usage error."""
    args.parser.print_help()
    return 2


def cmd_dist_run(args) -> int:
    from repro.session import Session, SessionConfig

    if args.plan is None and not args.all:
        args.parser.error("dist run requires --plan FILE or --all")
    if args.plan is not None and args.all:
        args.parser.error("--plan and --all are mutually exclusive")
    config_kwargs: Dict[str, object] = {
        "seed": args.seed,
        # parallelism is across entries (the fleet), not inside one
        # search — each claimed entry evaluates serially
        "workers": 0,
        "strategies": tuple(
            s for s in args.strategies.split(",") if s
        )
        or SessionConfig().strategies,
        "fault_plan": args.faults,
    }
    if args.ttl is not None:
        config_kwargs["lease_ttl_s"] = args.ttl
    sess = Session(
        SessionConfig(**config_kwargs),  # type: ignore[arg-type]
        cache=args.cache,
        store=args.store,
    )
    defaults: Dict[str, object] = {}
    if args.budget is not None:
        defaults["budget"] = args.budget
    if args.threshold is not None:
        defaults["threshold"] = args.threshold
    result = sess.fleet(
        plan_file=args.plan,
        all_apps=args.all,
        defaults=defaults,
        workers=args.workers,
        shards=args.shards,
        deadline_s=args.deadline,
    )
    print(result.report())
    _write_json(args, result.to_dict())
    return 0 if result.completed else 1


# -- serve --------------------------------------------------------------------


def cmd_serve(args) -> int:
    from repro.obs import trace as obs_trace
    from repro.serve import run_server
    from repro.session import Session, SessionConfig

    if args.trace is not None:
        # server-lifetime tracing: every job execution appends its
        # serve.job (and nested) spans to this file
        obs_trace.enable(args.trace)
    config = SessionConfig(
        seed=args.seed,
        strategies=tuple(s for s in args.strategies.split(",") if s)
        or SessionConfig().strategies,
        fault_plan=getattr(args, "faults", None),
    )
    session = Session(config, cache=args.cache, store=args.store)
    try:
        run_server(
            session,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_queue=args.max_queue,
            max_budget=args.max_budget,
            default_timeout_s=args.timeout,
            resume=args.resume,
            drain_timeout_s=args.drain_timeout,
        )
    finally:
        if args.trace is not None:
            obs_trace.disable()
    return 0


# -- trace --------------------------------------------------------------------


def cmd_trace(args) -> int:
    from repro.obs.profile import (
        format_summary,
        load_trace,
        summarize_records,
    )

    try:
        records = load_trace(args.summarize)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # load_trace names the offending line — the validation exit
        # the CI trace-smoke job keys on
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary = summarize_records(records)
    print(f"trace: {args.summarize}")
    print(format_summary(summary))
    _write_json(args, summary)
    return 0


# -- parser -------------------------------------------------------------------


def _add_kernel_flags(sp, with_point: bool = False) -> None:
    sp.add_argument(
        "--kernel", help="app scenario to target (see --list)"
    )
    sp.add_argument(
        "--list", action="store_true",
        help="list available app scenarios",
    )
    if with_point:
        sp.add_argument(
            "--point", type=int, default=0,
            help="validation point index (default 0)",
        )
    sp.add_argument(
        "--cache", default=None,
        help="sweep result cache directory (content-addressed)",
    )
    sp.add_argument(
        "--json", type=Path, default=None,
        help="write the full result as JSON to this path",
    )


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "CHEF-FP reproduction: floating-point error estimation, "
            "input sweeps, mixed-precision tuning, Pareto precision "
            "search, and run management — one session-backed CLI"
        ),
    )
    from repro.search.store import library_version

    ap.add_argument(
        "--version", action="version",
        version=f"repro {library_version()}",
    )
    sub = ap.add_subparsers(dest="command", metavar="command")

    # estimate
    sp = sub.add_parser(
        "estimate",
        help="one-point FP error estimate of an app kernel",
    )
    _add_kernel_flags(sp, with_point=True)
    sp.add_argument(
        "--model", choices=_MODELS, default="taylor",
        help="error model (default: taylor, Eq. 1)",
    )
    sp.set_defaults(func=cmd_estimate, parser=sp)

    # sweep
    sp = sub.add_parser(
        "sweep",
        help="batched error estimate over the app's input sweep",
    )
    _add_kernel_flags(sp)
    sp.add_argument(
        "--model", choices=_MODELS, default="taylor",
        help="error model (default: taylor, Eq. 1)",
    )
    sp.add_argument(
        "--aggregate", default="max",
        help="batch-axis aggregation: max|mean|p95|... (default max)",
    )
    sp.set_defaults(func=cmd_sweep, parser=sp)

    # tune
    sp = sub.add_parser(
        "tune",
        help="greedy / distribution-robust mixed-precision tuning",
    )
    _add_kernel_flags(sp)
    sp.add_argument(
        "--point", type=int, default=None,
        help="point mode: validation point index (default 0)",
    )
    sp.add_argument(
        "--threshold", type=float, default=None,
        help="error threshold (default: scenario)",
    )
    sp.add_argument(
        "--robust", action="store_true",
        help="aggregate contributions over the scenario input sweep "
             "instead of tuning from one point",
    )
    sp.add_argument(
        "--aggregate", default=None,
        help="robust-mode aggregation (default max = worst case)",
    )
    sp.set_defaults(func=cmd_tune, parser=sp)

    # analyze
    sp = sub.add_parser(
        "analyze",
        help="static precision analysis: value ranges, sensitivity "
             "bounds, and kernel lint (RA1xx/RA2xx)",
    )
    sp.add_argument(
        "kernel", nargs="?", default=None,
        help="app scenario to analyze (see --list)",
    )
    sp.add_argument(
        "--list", action="store_true",
        help="list available app scenarios",
    )
    sp.add_argument(
        "--threshold", type=float, default=None,
        help="error budget for estimate-based pinning "
             "(default: scenario threshold)",
    )
    sp.add_argument(
        "--demote-to", dest="demote_to", choices=("f16", "f32"),
        default=None,
        help="demotion target the feasibility checks test against "
             "(default f32)",
    )
    sp.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the full report as JSON — to PATH, or to stdout "
             "when no path is given",
    )
    sp.set_defaults(func=cmd_analyze, parser=sp)

    # search
    sp = sub.add_parser(
        "search",
        help="cost-aware Pareto precision search over app kernels",
    )
    _add_kernel_flags(sp)
    sp.add_argument(
        "--budget", type=int, default=None,
        help="max computed candidate evaluations (default: scenario)",
    )
    sp.add_argument(
        "--workers", type=int, default=0,
        help=">= 2 evaluates candidate pools in that many processes",
    )
    sp.add_argument(
        "--strategies", default="",
        help="comma-separated strategy names (default: greedy,delta,"
             "anneal)",
    )
    sp.add_argument(
        "--threshold", type=float, default=None,
        help="error threshold override (default: scenario)",
    )
    sp.add_argument(
        "--seed", type=int, default=0, help="strategy RNG seed"
    )
    sp.add_argument(
        "--store", default=None,
        help="persistent run-store directory (checkpointed, resumable "
             "runs; content-addressed by the search parameters)",
    )
    sp.add_argument(
        "--resume", action="store_true",
        help="resume matching runs from --store (bit-identical to an "
             "uninterrupted run)",
    )
    sp.add_argument(
        "--plan", type=Path, default=None,
        help="legacy alias of the plan subcommand (requires --store)",
    )
    sp.add_argument(
        "--all", action="store_true",
        help="legacy alias of `plan --all` (requires --store)",
    )
    sp.add_argument(
        "--trace", type=Path, default=None,
        help="append span records (JSONL) to this trace file and "
             "print the per-phase profile (see the trace subcommand)",
    )
    sp.add_argument(
        "--faults", default=None,
        help="fault-injection plan (inline JSON or a file path) — "
             "deterministic chaos testing; see README failure "
             "semantics",
    )
    sp.set_defaults(func=cmd_search, parser=sp)

    # plan
    sp = sub.add_parser(
        "plan",
        help="multi-scenario search plans through the orchestrator",
    )
    sp.add_argument(
        "--plan", type=Path, default=None,
        help="JSON plan file (entries + defaults)",
    )
    sp.add_argument(
        "--all", action="store_true",
        help="orchestrate every app scenario as one plan",
    )
    sp.add_argument("--store", required=True, help="run-store directory")
    sp.add_argument(
        "--resume", action="store_true", default=True,
        help="resume entries from the store (default)",
    )
    sp.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="recompute entries even when stored runs exist",
    )
    sp.add_argument("--budget", type=int, default=None)
    sp.add_argument("--threshold", type=float, default=None)
    sp.add_argument("--workers", type=int, default=0)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--strategies", default="")
    sp.add_argument("--cache", default=None)
    sp.add_argument("--json", type=Path, default=None)
    sp.set_defaults(func=cmd_plan, parser=sp)

    # runs
    sp = sub.add_parser(
        "runs",
        help="run-store management: list / compare / prune / diff",
    )
    sp.add_argument("--store", required=True, help="run-store directory")
    action = sp.add_mutually_exclusive_group()
    action.add_argument(
        "--list", action="store_true",
        help="list stored runs (default)",
    )
    action.add_argument(
        "--compare", nargs="*", metavar="RUN", default=None,
        help="compare stored runs (all, or the given run-id prefixes)",
    )
    action.add_argument(
        "--prune", action="store_true",
        help="garbage-collect runs (set at least one criterion)",
    )
    action.add_argument(
        "--diff", nargs=2, metavar=("RUN_A", "RUN_B"), default=None,
        help="diff the Pareto fronts of two stored runs",
    )
    action.add_argument(
        "--merge", nargs="+", metavar="SRC", default=None,
        help="union-merge runs from the given source store(s) into "
             "--store (dedup by content-addressed run id; records are "
             "checksum-verified; merged manifests gain shard "
             "provenance)",
    )
    sp.add_argument(
        "--max-age-days", type=float, default=None,
        help="prune: drop runs older than this many days",
    )
    sp.add_argument(
        "--max-runs", type=int, default=None,
        help="prune: keep only the newest N runs",
    )
    sp.add_argument(
        "--incomplete", action="store_true",
        help="prune: drop runs that never completed (runs touched "
             "within --min-age-hours are presumed live and skipped)",
    )
    sp.add_argument(
        "--min-age-hours", type=float, default=1.0,
        help="prune --incomplete: protect runs modified more "
             "recently than this (default 1.0; 0 disables)",
    )
    sp.add_argument(
        "--dry-run", action="store_true",
        help="prune: report without deleting",
    )
    sp.add_argument("--json", type=Path, default=None)
    sp.set_defaults(func=cmd_runs, parser=sp)

    # dist
    sp = sub.add_parser(
        "dist",
        help="distributed sharded search: lease-claiming worker fleet",
    )
    dist_sub = sp.add_subparsers(dest="dist_cmd", metavar="ACTION")
    sp.set_defaults(func=cmd_dist, parser=sp)
    dp = dist_sub.add_parser(
        "run",
        help="execute a (sharded) plan with N claiming worker "
             "processes over one shared run store",
    )
    dp.add_argument(
        "--plan", type=Path, default=None,
        help="JSON plan file (entries + defaults)",
    )
    dp.add_argument(
        "--all", action="store_true",
        help="run every app scenario as one plan",
    )
    dp.add_argument("--store", required=True, help="run-store directory")
    dp.add_argument(
        "--workers", type=int, default=2,
        help="worker processes claiming entries (default 2)",
    )
    dp.add_argument(
        "--shards", type=int, default=1,
        help="expand each entry into N seed-varied shard runs "
             "(default 1: no sharding)",
    )
    dp.add_argument(
        "--ttl", type=float, default=None,
        help="lease time-to-live in seconds before a silent worker's "
             "entry can be stolen (default 30)",
    )
    dp.add_argument(
        "--deadline", type=float, default=None,
        help="fleet wall-clock budget in seconds (default: unbounded)",
    )
    dp.add_argument("--budget", type=int, default=None)
    dp.add_argument("--threshold", type=float, default=None)
    dp.add_argument("--seed", type=int, default=0)
    dp.add_argument(
        "--strategies", default="",
        help="session default strategy line-up (comma-separated)",
    )
    dp.add_argument("--cache", default=None)
    dp.add_argument(
        "--faults", default=None,
        help="fault-injection plan enabled inside every worker "
             "(inline JSON or a file path)",
    )
    dp.add_argument("--json", type=Path, default=None)
    dp.set_defaults(func=cmd_dist_run, parser=dp)

    # serve
    sp = sub.add_parser(
        "serve",
        help="long-lived HTTP/JSON job server over one shared session",
    )
    sp.add_argument(
        "--store", required=True,
        help="run-store directory (anchors durable runs and the job "
             "journal — required: a server must survive restarts)",
    )
    sp.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    sp.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0: pick a free port, printed on start)",
    )
    sp.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job executions (default 2)",
    )
    sp.add_argument(
        "--max-queue", type=int, default=16,
        help="pending jobs accepted before 429 backpressure "
             "(default 16)",
    )
    sp.add_argument(
        "--max-budget", type=int, default=None,
        help="server-wide cap on a search job's evaluation budget",
    )
    sp.add_argument(
        "--timeout", type=float, default=None,
        help="default per-job wall-clock deadline in seconds",
    )
    sp.add_argument(
        "--no-resume", dest="resume", action="store_false",
        default=True,
        help="do not requeue unfinished jobs from a previous server "
             "life",
    )
    sp.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to wait for in-flight jobs on SIGTERM "
             "(default 30)",
    )
    sp.add_argument(
        "--cache", default=None,
        help="sweep result cache directory (content-addressed)",
    )
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument(
        "--strategies", default="",
        help="session default strategy line-up (comma-separated)",
    )
    sp.add_argument(
        "--trace", type=Path, default=None,
        help="append span records (JSONL) for every job execution to "
             "this trace file",
    )
    sp.add_argument(
        "--faults", default=None,
        help="fault-injection plan (inline JSON or a file path) — "
             "deterministic chaos testing of the serve stack",
    )
    sp.set_defaults(func=cmd_serve, parser=sp)

    # trace
    sp = sub.add_parser(
        "trace",
        help="summarize a JSONL trace file into a per-phase profile",
    )
    sp.add_argument(
        "--summarize", type=Path, required=True, metavar="TRACE",
        help="trace file written by --trace (search/serve) to "
             "validate and aggregate",
    )
    sp.add_argument(
        "--json", type=Path, default=None,
        help="write the summary as JSON to this path",
    )
    sp.set_defaults(func=cmd_trace, parser=sp)

    return ap


def cmd_plan(args) -> int:
    if args.plan is None and not args.all:
        args.parser.error("plan requires --plan FILE or --all")
    if args.plan is not None and args.all:
        args.parser.error("--plan and --all are mutually exclusive")
    return _run_plan(args)


def main(argv: Optional[List[str]] = None) -> int:
    ap = build_parser()
    args = ap.parse_args(argv)
    if getattr(args, "func", None) is None:
        ap.print_help()
        return 2
    try:
        return args.func(args)
    except ConfigError as exc:
        # invalid option/argument values — a usage error (exit 2, like
        # argparse), not an execution failure
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # the reader went away (`... | head`); die quietly like a
        # well-behaved unix tool
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
