"""Symbolic pullback of IR expressions.

Given an assignment RHS and a seed adjoint expression, produce the list
of adjoint accumulations ``d_leaf += seed * ∂RHS/∂leaf`` — the per-
statement pullback operators of reverse-mode AD (paper §II-B).  Partial
derivatives of intrinsics come from the registry's derivative builders.

The returned contribution expressions reference operand *values*; the
reverse transformer guarantees those values are restored to their
pre-assignment state before the accumulations execute.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.frontend.intrinsics import INTRINSICS
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.util.errors import DifferentiationError

#: An adjoint accumulation target plus its contribution expression.
Contribution = Tuple[N.LValue, N.Expr]


def adjoint_name(var: str) -> str:
    """Name of the adjoint variable/array shadowing ``var``."""
    return f"_d_{var}"


def pullback(expr: N.Expr, seed: N.Expr) -> List[Contribution]:
    """Compute adjoint contributions of ``expr`` under ``seed``.

    Only float-typed leaves (scalar reads and array-element reads)
    produce contributions; integer and boolean subexpressions are
    transparent walls for derivatives, as in Clad.

    :raises DifferentiationError: on constructs with no derivative rule.
    """
    out: List[Contribution] = []
    _pull(expr, seed, out)
    return out


def _pull(e: N.Expr, seed: N.Expr, out: List[Contribution]) -> None:
    if isinstance(e, N.Const):
        return
    if isinstance(e, N.Name):
        if e.dtype is not None and e.dtype.is_float:
            adj = b.name(adjoint_name(e.id), DType.F64)
            out.append((adj, seed))
        return
    if isinstance(e, N.Index):
        if e.dtype is not None and e.dtype.is_float:
            adj = b.index(adjoint_name(e.base), b.clone(e.index), DType.F64)
            out.append((adj, seed))
        return
    if isinstance(e, N.BinOp):
        _pull_binop(e, seed, out)
        return
    if isinstance(e, N.UnaryOp):
        if e.op == "-":
            _pull(e.operand, b.neg(b.clone(seed)), out)
            return
        return  # 'not' has no derivative
    if isinstance(e, N.Call):
        _pull_call(e, seed, out)
        return
    if isinstance(e, N.Cast):
        # d(cast(x))/dx treated as 1 (the rounding is the *error*, not the
        # derivative — exactly the first-order Taylor treatment of §II-A)
        if e.to.is_float:
            _pull(e.operand, b.clone(seed), out)
        return
    raise DifferentiationError(
        f"cannot differentiate expression {type(e).__name__}"
    )


def _pull_binop(e: N.BinOp, seed: N.Expr, out: List[Contribution]) -> None:
    op = e.op
    if op in N.CMPOPS or op in N.BOOLOPS:
        return  # booleans: no flow of derivatives
    left, right = e.left, e.right
    if op == "+":
        _pull(left, b.clone(seed), out)
        _pull(right, b.clone(seed), out)
    elif op == "-":
        _pull(left, b.clone(seed), out)
        _pull(right, b.neg(b.clone(seed)), out)
    elif op == "*":
        _pull(left, b.mul(b.clone(seed), b.clone(right)), out)
        _pull(right, b.mul(b.clone(seed), b.clone(left)), out)
    elif op == "/":
        _pull(left, b.div(b.clone(seed), b.clone(right)), out)
        # d(l/r)/dr = -l/r^2
        r2 = b.mul(b.clone(right), b.clone(right))
        _pull(
            right,
            b.neg(b.div(b.mul(b.clone(seed), b.clone(left)), r2)),
            out,
        )
    elif op in ("//", "%"):
        return  # integer-style ops: piecewise-constant, derivative 0
    else:  # pragma: no cover - validator rejects unknown ops earlier
        raise DifferentiationError(f"cannot differentiate operator {op!r}")


def _pull_call(e: N.Call, seed: N.Expr, out: List[Contribution]) -> None:
    info = INTRINSICS.get(e.fn)
    if info is None:
        raise DifferentiationError(f"unknown intrinsic {e.fn!r}")
    if info.deriv is None:
        return  # non-differentiable (floor, ceil, step_ge): zero partials
    partials = info.deriv(e.args)
    if len(partials) != len(e.args):
        raise DifferentiationError(
            f"intrinsic {e.fn!r}: derivative builder returned "
            f"{len(partials)} partials for {len(e.args)} args"
        )
    for arg, p in zip(e.args, partials):
        if isinstance(p, N.Const) and p.value == 0.0:
            continue
        _pull(arg, b.mul(b.clone(seed), p), out)
