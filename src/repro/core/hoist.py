"""Local-declaration hoisting.

The adjoint transformation treats every store uniformly, so local
declarations with initializers (``x: f32 = e``) are split into a
top-of-function declaration (``x: f32``) plus a plain assignment at the
original position — the same normalization a C compiler's lowering does.
After hoisting, a loop-carried local behaves exactly like any other
overwritten variable for tape (Push/Pop) purposes.
"""

from __future__ import annotations

from typing import List

from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.typecheck import infer_types


def hoist_locals(fn: N.Function) -> N.Function:
    """Return a clone of ``fn`` with all VarDecls hoisted to a prologue.

    The clone's body starts with initializer-free declarations (one per
    local, in first-appearance order) followed by the original statements
    with declarations rewritten as assignments.
    """
    clone = b.clone(fn)
    decls: List[N.VarDecl] = []
    seen = set()

    def rewrite(body: List[N.Stmt]) -> List[N.Stmt]:
        out: List[N.Stmt] = []
        for s in body:
            if isinstance(s, N.VarDecl):
                if s.name not in seen:
                    seen.add(s.name)
                    d = N.VarDecl(s.name, s.dtype, None)
                    d.loc = s.loc
                    decls.append(d)
                if s.init is not None:
                    tgt = b.name(s.name, s.dtype)
                    st = N.Assign(tgt, s.init)
                    st.loc = s.loc
                    out.append(st)
            elif isinstance(s, N.For):
                s.body = rewrite(s.body)
                out.append(s)
            elif isinstance(s, N.While):
                s.body = rewrite(s.body)
                out.append(s)
            elif isinstance(s, N.If):
                s.then = rewrite(s.then)
                s.orelse = rewrite(s.orelse)
                out.append(s)
            else:
                out.append(s)
        return out

    clone.body = decls + rewrite(clone.body)  # type: ignore[operator]
    infer_types(clone)
    return clone
