"""CHEF-FP core: reverse-mode AD with inline error estimation.

This package is the paper's primary contribution, reproduced:

* :mod:`repro.core.reverse` — the source-transformation adjoint generator
  (Fig. 2 structure; rules S1–S4),
* :mod:`repro.core.events` — the callback system through which extensions
  augment the generated adjoint (Clad's extension mechanism),
* :mod:`repro.core.estimation` — the Error Estimation Module,
* :mod:`repro.core.models` — error models (Taylor Eq. 1, ADAPT Eq. 2,
  FastApprox Algorithm 2, external user models),
* :mod:`repro.core.api` — the user-facing ``estimate_error``/``gradient``
  entry points (the analogue of ``clad::estimate_error``).
"""

from repro.core.api import estimate_error, gradient, ErrorEstimator, Gradient
from repro.core.models import (
    ErrorModel,
    TaylorModel,
    AdaptModel,
    ApproxModel,
    CenaModel,
    ExternalModel,
)
from repro.core.report import ErrorReport, GradientResult

__all__ = [
    "estimate_error",
    "gradient",
    "ErrorEstimator",
    "Gradient",
    "ErrorModel",
    "TaylorModel",
    "AdaptModel",
    "ApproxModel",
    "CenaModel",
    "ExternalModel",
    "ErrorReport",
    "GradientResult",
]
