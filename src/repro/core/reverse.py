"""Reverse-mode (adjoint) source transformation with extension callbacks.

This module implements the transformation of Fig. 2 / rules S1–S4 of the
paper: a primal IR function becomes an adjoint function consisting of a
*forward sweep* (the primal computation plus ``Push`` of values that the
backward sweep will need) and a *backward sweep* (state restoration via
``Pop`` plus adjoint accumulation), with an extension hook —
``AssignError`` — invoked for every differentiable assignment *before*
its state is restored, so the hook observes the assigned value together
with its adjoint.

Tape minimization ("to-be-recorded" analysis) is done in two passes:
pass 1 generates the adjoint pushing every overwritten value and scans
the backward sweep for which variables' *values* are actually read
(operands of nonlinear partials, error-model expressions, index
computations); pass 2 regenerates keeping only those pushes.  This is
the mechanism behind CHEF-FP's memory advantage over the full-tape
ADAPT baseline.

Supported control flow: ``if``/``else`` (branch bools recorded on a
control stack), counted ``for`` loops (iteration reversal; trip counts
recomputed when bounds are loop-invariant integers, otherwise counted
dynamically), ``while`` loops (dynamic trip counting), and the *guarded
break* pattern ``if cond: break`` as the first statement of a loop body
(the CG-tolerance exit used by HPCCG).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.events import AdjointExtension
from repro.core.hoist import hoist_locals
from repro.core.pullback import adjoint_name, pullback
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType, ScalarType
from repro.ir.typecheck import collect_var_dtypes, infer_types
from repro.ir.visitor import walk_expr, walk_stmts
from repro.util.errors import DifferentiationError

_TAPE = "tape"
_CTRL = "ctrl"
_IDX = "idx"


class AdjointContext:
    """Shared state handed to extensions during adjoint generation."""

    def __init__(self, fn: N.Function) -> None:
        self.primal = fn
        self.var_dtypes = collect_var_dtypes(fn)
        self._temp_counter = 0
        self.temp_decls: List[Tuple[str, DType]] = []

    def new_temp(self, prefix: str, dtype: DType) -> str:
        """Allocate a fresh generated-name temporary (declared in the
        adjoint prologue)."""
        self._temp_counter += 1
        name = f"{prefix}{self._temp_counter}"
        self.temp_decls.append((name, dtype))
        return name

    def dtype_of(self, var: str) -> DType:
        return self.var_dtypes.get(var, DType.F64)


class ReverseModeTransformer:
    """Builds the adjoint (gradient) function of a primal IR function."""

    def __init__(
        self,
        fn: N.Function,
        extension: Optional[AdjointExtension] = None,
        minimal_pushes: bool = True,
    ) -> None:
        if not fn.body or not isinstance(fn.body[-1], N.Return):
            raise DifferentiationError(
                f"{fn.name}: reverse mode requires a scalar-returning "
                "function (final return statement)"
            )
        self.primal = hoist_locals(fn)
        self.extension = extension or AdjointExtension()
        self.minimal_pushes = minimal_pushes
        self.assigned_ints = self._collect_assigned_names(self.primal)

    # -- public ----------------------------------------------------------------
    def transform(self) -> N.Function:
        """Generate the adjoint function.

        The result's ``meta['adjoint']`` describes the return layout::

            {"ret_names": [("value",), ("grad", p), ..., (extra, ...)],
             "array_grads": {param: adjoint_param},
             "primal_name": name}
        """
        # pass 1: push everything, discover backward value reads
        adj1 = self._generate(needed=None)
        if self.minimal_pushes:
            needed = _scan_backward_reads(adj1)
            adj = self._generate(needed=needed)
        else:
            adj = adj1
        infer_types(adj)
        return adj

    # -- generation ---------------------------------------------------------------
    def _generate(self, needed: Optional[Set[str]]) -> N.Function:
        fn = self.primal
        ctx = AdjointContext(fn)
        self.ctx = ctx
        self.needed = needed
        ext = self.extension
        ext.on_begin(ctx)

        decls = [s for s in fn.body if isinstance(s, N.VarDecl)]
        core = [
            s for s in fn.body if not isinstance(s, (N.VarDecl, N.Return))
        ]
        ret_stmt = fn.body[-1]
        assert isinstance(ret_stmt, N.Return)
        ret_dtype = fn.ret_dtype or DType.F64

        # the return becomes an ordinary assignment to _ret
        ret_assign = N.Assign(b.name("_ret", ret_dtype), b.clone(ret_stmt.value))
        ret_assign.loc = ret_stmt.loc
        core = core + [ret_assign]

        fwd, bwd = self._transform_body(core)

        # prologue: primal locals, loop vars, _ret, adjoints, temps, ext regs
        prologue: List[N.Stmt] = []
        for d in decls:
            prologue.append(N.VarDecl(d.name, d.dtype, None))
        loop_vars = sorted(
            {
                s.var
                for s in walk_stmts(fn.body)
                if isinstance(s, N.For)
            }
        )
        for lv in loop_vars:
            prologue.append(N.VarDecl(lv, DType.I64, None))
        prologue.append(N.VarDecl("_ret", ret_dtype, None))
        # the backward sweep may restore _ret to its pre-assignment value
        # (Pop), so the value returned to the caller is snapshotted
        # between the sweeps
        prologue.append(N.VarDecl("_retsave", ret_dtype, None))

        adj_scalar_decls: List[N.Stmt] = []
        float_scalars = ["_ret"]
        for p in fn.params:
            if isinstance(p.type, ScalarType) and p.type.dtype.is_float:
                float_scalars.append(p.name)
        for d in decls:
            if d.dtype.is_float:
                float_scalars.append(d.name)
        for v in float_scalars:
            adj_scalar_decls.append(
                N.VarDecl(adjoint_name(v), DType.F64, b.fzero())
            )

        for tname, tdt in ctx.temp_decls:
            prologue.append(N.VarDecl(tname, tdt, None))

        ext_prologue = ext.prologue(ctx) if hasattr(ext, "prologue") else []
        ext_epilogue = ext.on_end(ctx)

        snapshot = N.Assign(
            b.name("_retsave", ret_dtype), b.name("_ret", ret_dtype)
        )
        seed = N.Assign(b.name(adjoint_name("_ret"), DType.F64), b.fone())

        # return layout
        ret_values: List[N.Expr] = [b.name("_retsave", ret_dtype)]
        ret_names: List[Tuple[str, ...]] = [("value",)]
        for p in fn.params:
            if (
                isinstance(p.type, ScalarType)
                and p.type.dtype.is_float
                and p.differentiable
            ):
                ret_values.append(b.name(adjoint_name(p.name), DType.F64))
                ret_names.append(("grad", p.name))
        for name, expr in ext.extra_returns(ctx):
            ret_values.append(expr)
            ret_names.append(("extra", name))

        body: List[N.Stmt] = (
            prologue
            + adj_scalar_decls
            + ext_prologue
            + fwd
            + [snapshot, seed]
            + bwd
            + ext_epilogue
            + [N.ReturnTuple(ret_values)]
        )

        params = [b.clone(p) for p in fn.params]
        array_grads: Dict[str, str] = {}
        for p in fn.params:
            if isinstance(p.type, ArrayType) and p.type.dtype.is_float and p.differentiable:
                gname = adjoint_name(p.name)
                params.append(
                    N.Param(gname, ArrayType(DType.F64), differentiable=False)
                )
                array_grads[p.name] = gname

        adj = N.Function(
            name=f"{fn.name}_grad",
            params=params,
            body=body,
            ret_dtype=None,
        )
        adj.meta["adjoint"] = {
            "primal_name": fn.name,
            "ret_names": ret_names,
            "array_grads": array_grads,
        }
        return adj

    # -- statement transformation ------------------------------------------------
    def _transform_body(
        self, body: Sequence[N.Stmt]
    ) -> Tuple[List[N.Stmt], List[N.Stmt]]:
        fwd: List[N.Stmt] = []
        segments: List[List[N.Stmt]] = []
        for s in body:
            f, seg = self._transform_stmt(s)
            fwd.extend(f)
            segments.append(seg)
        bwd: List[N.Stmt] = []
        for seg in reversed(segments):
            bwd.extend(seg)
        return fwd, bwd

    def _transform_stmt(
        self, s: N.Stmt
    ) -> Tuple[List[N.Stmt], List[N.Stmt]]:
        if isinstance(s, N.Assign):
            return self._transform_assign(s)
        if isinstance(s, N.If):
            return self._transform_if(s)
        if isinstance(s, N.For):
            return self._transform_for(s)
        if isinstance(s, N.While):
            return self._transform_while(s)
        if isinstance(s, N.ExprStmt):
            return [b.clone(s)], []
        if isinstance(s, N.Break):
            raise DifferentiationError(
                "bare 'break' is only differentiable as the guarded "
                "pattern 'if cond: break' at the top of a loop body"
            )
        if isinstance(s, (N.Return, N.ReturnTuple)):
            raise DifferentiationError(
                "unexpected return inside function body"
            )
        if isinstance(s, N.VarDecl):
            raise DifferentiationError(
                "internal: VarDecl after hoisting"
            )
        raise DifferentiationError(
            f"cannot differentiate statement {type(s).__name__}"
        )

    # -- assignments ------------------------------------------------------------
    def _need_push(self, target: N.LValue) -> bool:
        if self.needed is None:
            return True
        name = target.id if isinstance(target, N.Name) else target.base
        return name in self.needed

    @staticmethod
    def _read_of(target: N.LValue) -> N.Expr:
        if isinstance(target, N.Name):
            return b.name(target.id, target.dtype or DType.F64)
        return b.index(
            target.base, b.clone(target.index), target.dtype or DType.F64
        )

    @staticmethod
    def _adjoint_ref(target: N.LValue) -> N.LValue:
        if isinstance(target, N.Name):
            return b.name(adjoint_name(target.id), DType.F64)
        return b.index(
            adjoint_name(target.base), b.clone(target.index), DType.F64
        )

    def _transform_assign(
        self, s: N.Assign
    ) -> Tuple[List[N.Stmt], List[N.Stmt]]:
        target = s.target
        tdt = target.dtype or self.ctx.dtype_of(
            target.id if isinstance(target, N.Name) else target.base
        )
        push = self._need_push(target)
        fwd: List[N.Stmt] = []
        if push:
            fwd.append(N.Push(_TAPE, self._read_of(target)))
        fwd.append(b.clone(s))

        bwd: List[N.Stmt] = []
        if tdt.is_float:
            t = self.ctx.new_temp("_a", DType.F64)
            tref = b.name(t, DType.F64)
            bwd.append(
                N.Assign(tref, _lvalue_read(self._adjoint_ref(target)))
            )
            # AssignError: sees post-assignment value and its adjoint
            bwd.extend(
                self.extension.on_assign(
                    self.ctx, b.clone(target), b.name(t, DType.F64), s
                )
            )
            bwd.append(N.Assign(self._adjoint_ref(target), b.fzero()))
            if push:
                bwd.append(N.Pop(_TAPE, b.clone(target)))
            for adj_lv, contrib in pullback(s.value, b.name(t, DType.F64)):
                bwd.append(b.accumulate(adj_lv, contrib))
        else:
            if push:
                bwd.append(N.Pop(_TAPE, b.clone(target)))
        for st in fwd:
            st.loc = s.loc
        return fwd, bwd

    # -- control flow --------------------------------------------------------
    def _transform_if(self, s: N.If) -> Tuple[List[N.Stmt], List[N.Stmt]]:
        c = self.ctx.new_temp("_c", DType.B1)
        fwd_then, bwd_then = self._transform_body(s.then)
        fwd_orelse, bwd_orelse = self._transform_body(s.orelse)
        # NB: the branch bool is pushed AFTER the branch body executes so
        # that nested pushes from inside the branch sit below it on the
        # stack — the backward sweep pops the bool first, then replays.
        fwd = [
            N.Assign(b.name(c, DType.B1), b.clone(s.cond)),
            N.If(b.name(c, DType.B1), fwd_then, fwd_orelse),
            N.Push(_CTRL, b.name(c, DType.B1)),
        ]
        bwd = [
            N.Pop(_CTRL, b.name(c, DType.B1)),
            N.If(b.name(c, DType.B1), bwd_then, bwd_orelse),
        ]
        return fwd, bwd

    @staticmethod
    def _detect_guard(body: Sequence[N.Stmt]) -> Optional[N.If]:
        if (
            body
            and isinstance(body[0], N.If)
            and len(body[0].then) == 1
            and isinstance(body[0].then[0], N.Break)
            and not body[0].orelse
        ):
            return body[0]
        return None

    def _bounds_safe(self, exprs: Sequence[N.Expr]) -> bool:
        """True if loop-bound expressions are recomputable in the
        backward sweep: integer expressions whose free variables are
        never reassigned (parameters, enclosing loop variables)."""
        for e in exprs:
            for node in walk_expr(e):
                if isinstance(node, N.Index):
                    return False
                if isinstance(node, N.Name):
                    dt = self.ctx.dtype_of(node.id)
                    if dt.is_float or node.id in self.assigned_ints:
                        return False
        return True

    @staticmethod
    def _collect_assigned_names(fn: N.Function) -> Set[str]:
        out: Set[str] = set()
        for s in walk_stmts(fn.body):
            if isinstance(s, N.Assign) and isinstance(s.target, N.Name):
                out.add(s.target.id)
        return out

    def _transform_for(self, s: N.For) -> Tuple[List[N.Stmt], List[N.Stmt]]:
        if isinstance(s.step, N.Const) and s.step.value <= 0:
            raise DifferentiationError(
                "loops with non-positive constant step are not supported"
            )
        guard = self._detect_guard(s.body)
        inner = list(s.body[1:]) if guard is not None else list(s.body)
        fwd_body, bwd_body = self._transform_body(inner)

        i64 = DType.I64
        ivar = s.var
        if guard is None and self._bounds_safe([s.lo, s.hi, s.step]):
            # static mode: recompute trip count in the backward sweep
            n = self.ctx.new_temp("_n", i64)
            j = self.ctx.new_temp("_j", i64)
            fwd = [N.For(ivar, b.clone(s.lo), b.clone(s.hi), b.clone(s.step), fwd_body)]
            trips = b.binop(
                "//",
                b.binop(
                    "-",
                    b.binop(
                        "+", b.clone(s.hi), b.binop("-", b.clone(s.step), b.const(1))
                    ),
                    b.clone(s.lo),
                ),
                b.clone(s.step),
            )
            nref = lambda: b.name(n, i64)  # noqa: E731
            recompute_i = N.Assign(
                b.name(ivar, i64),
                b.binop(
                    "+",
                    b.clone(s.lo),
                    b.binop(
                        "*",
                        b.binop(
                            "-",
                            b.binop("-", nref(), b.const(1)),
                            b.name(j, i64),
                        ),
                        b.clone(s.step),
                    ),
                ),
            )
            bwd = [
                N.Assign(b.name(n, i64), trips),
                N.If(
                    b.binop("<", nref(), b.const(0)),
                    [N.Assign(b.name(n, i64), b.const(0))],
                    [],
                ),
                N.For(
                    j,
                    b.const(0),
                    nref(),
                    b.const(1),
                    [recompute_i] + bwd_body,
                ),
            ]
            return fwd, bwd

        # dynamic mode: count trips, record indices on a stack
        n = self.ctx.new_temp("_n", i64)
        j = self.ctx.new_temp("_j", i64)
        prefix: List[N.Stmt] = []
        if guard is not None:
            prefix.append(b.clone(guard))
        prefix.append(
            N.Assign(b.name(n, i64), b.binop("+", b.name(n, i64), b.const(1)))
        )
        # the iteration index is pushed AFTER the body so nested pushes
        # sit below it — the backward replay pops it first, then the body
        suffix = [N.Push(_IDX, b.name(ivar, i64))]
        fwd = [
            N.Assign(b.name(n, i64), b.const(0)),
            N.For(
                ivar,
                b.clone(s.lo),
                b.clone(s.hi),
                b.clone(s.step),
                prefix + fwd_body + suffix,
            ),
            N.Push(_CTRL, b.name(n, i64)),
        ]
        bwd = [
            N.Pop(_CTRL, b.name(n, i64)),
            N.For(
                j,
                b.const(0),
                b.name(n, i64),
                b.const(1),
                [N.Pop(_IDX, b.name(ivar, i64))] + bwd_body,
            ),
        ]
        return fwd, bwd

    def _transform_while(
        self, s: N.While
    ) -> Tuple[List[N.Stmt], List[N.Stmt]]:
        guard = self._detect_guard(s.body)
        inner = list(s.body[1:]) if guard is not None else list(s.body)
        fwd_body, bwd_body = self._transform_body(inner)
        i64 = DType.I64
        n = self.ctx.new_temp("_n", i64)
        j = self.ctx.new_temp("_j", i64)
        prefix: List[N.Stmt] = []
        if guard is not None:
            prefix.append(b.clone(guard))
        prefix.append(
            N.Assign(b.name(n, i64), b.binop("+", b.name(n, i64), b.const(1)))
        )
        fwd = [
            N.Assign(b.name(n, i64), b.const(0)),
            N.While(b.clone(s.cond), prefix + fwd_body),
            N.Push(_CTRL, b.name(n, i64)),
        ]
        bwd = [
            N.Pop(_CTRL, b.name(n, i64)),
            N.For(j, b.const(0), b.name(n, i64), b.const(1), bwd_body),
        ]
        return fwd, bwd


def _lvalue_read(lv: N.LValue) -> N.Expr:
    if isinstance(lv, N.Name):
        return b.name(lv.id, lv.dtype or DType.F64)
    return b.index(lv.base, b.clone(lv.index), lv.dtype or DType.F64)


def _scan_backward_reads(adj: N.Function) -> Set[str]:
    """Names whose *values* the backward sweep reads.

    Walks everything after the seed assignment ``_d__ret = 1.0`` and
    collects scalar names and array bases read in expressions — operands
    of partials, error-model expressions, condition replays, loop bounds,
    and index computations (including the indices of Pop targets).
    Generated names (``_``-prefixed) can never be push targets, so their
    presence in the set is harmless.
    """
    reads: Set[str] = set()

    def scan_expr(e: N.Expr) -> None:
        for node in walk_expr(e):
            if isinstance(node, N.Name):
                reads.add(node.id)
            elif isinstance(node, N.Index):
                reads.add(node.base)

    def scan_stmt(st: N.Stmt) -> None:
        if isinstance(st, N.Assign):
            scan_expr(st.value)
            if isinstance(st.target, N.Index):
                scan_expr(st.target.index)
        elif isinstance(st, N.Pop):
            if isinstance(st.target, N.Index):
                scan_expr(st.target.index)
        elif isinstance(st, N.Push):
            scan_expr(st.value)
        elif isinstance(st, N.For):
            scan_expr(st.lo)
            scan_expr(st.hi)
            scan_expr(st.step)
            for c in st.body:
                scan_stmt(c)
        elif isinstance(st, N.While):
            scan_expr(st.cond)
            for c in st.body:
                scan_stmt(c)
        elif isinstance(st, N.If):
            scan_expr(st.cond)
            for c in st.then:
                scan_stmt(c)
            for c in st.orelse:
                scan_stmt(c)
        elif isinstance(st, (N.Return,)):
            scan_expr(st.value)
        elif isinstance(st, N.ReturnTuple):
            for v in st.values:
                scan_expr(v)
        elif isinstance(st, N.TraceAppend):
            scan_expr(st.value)
        elif isinstance(st, N.ExprStmt):
            scan_expr(st.value)

    in_backward = False
    for st in adj.body:
        if (
            not in_backward
            and isinstance(st, N.Assign)
            and isinstance(st.target, N.Name)
            and st.target.id == adjoint_name("_ret")
            and isinstance(st.value, N.Const)
            and st.value.value == 1.0
        ):
            in_backward = True
            continue
        if in_backward:
            scan_stmt(st)
    return reads
