"""Public entry points: ``gradient`` and ``estimate_error``.

These mirror ``clad::gradient`` / ``clad::estimate_error`` (paper
Listing 1): they take a :class:`~repro.frontend.registry.Kernel` (or an
IR function), run the reverse-mode transformation — with the Error
Estimation Module attached for ``estimate_error`` — push the result
through the optimization pipeline, compile it, and wrap execution in a
friendly calling convention.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.compile import CompiledFunction, compile_raw
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.core.estimation import ErrorEstimationModule
from repro.core.models import ErrorModel
from repro.core.report import ErrorReport, GradientResult
from repro.core.reverse import ReverseModeTransformer
from repro.frontend.registry import Kernel
from repro.ir import nodes as N
from repro.util.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.batch import BatchReport, ConfigBatchReport

KernelLike = Union[Kernel, N.Function]


def _as_ir(k: KernelLike) -> N.Function:
    if isinstance(k, Kernel):
        return k.ir
    return k


def build_adjoint(
    primal: N.Function,
    extension,
    opt_level: int = 2,
    minimal_pushes: bool = True,
) -> N.Function:
    """Reverse-mode transform + optimization pipeline, no compilation.

    The IR half of estimator construction, shared by the compiled
    scalar path (:class:`_AdjointRunner`) and the config-batched
    estimator, which regenerates per-config adjoints only to read their
    lane parameters off.
    """
    transformer = ReverseModeTransformer(
        primal, extension=extension, minimal_pushes=minimal_pushes
    )
    adjoint = transformer.transform()
    if opt_level > 0:
        from repro.opt.pipeline import optimize

        adjoint = optimize(adjoint, level=opt_level)
    return adjoint


class _AdjointRunner:
    """Shared machinery: build, optimize, compile, and call an adjoint."""

    def __init__(
        self,
        primal: N.Function,
        extension,
        opt_level: int,
        minimal_pushes: bool,
        extra_bindings: Optional[Dict[str, object]] = None,
    ) -> None:
        self.primal = primal
        t0 = time.perf_counter()
        with obs_trace.span(
            "estimate.build",
            kernel=primal.name,
            opt_level=opt_level,
            estimating=extension is not None,
        ):
            adjoint = build_adjoint(
                primal, extension, opt_level=opt_level,
                minimal_pushes=minimal_pushes,
            )
            self.adjoint = adjoint
            self.layout = adjoint.meta["adjoint"]
            self.compiled: CompiledFunction = compile_raw(
                adjoint, extra_bindings=extra_bindings
            )
        _BUILD_SECONDS.observe(time.perf_counter() - t0)
        self._n_primal_params = len(primal.params)

    @property
    def generated_source(self) -> str:
        """The generated (optimized) Python source of the adjoint."""
        return self.compiled.source

    def call(
        self, args: Sequence[object]
    ) -> Tuple[Dict[Tuple[str, ...], float], Dict[str, np.ndarray], Dict[str, list]]:
        if len(args) != self._n_primal_params:
            raise ExecutionError(
                f"{self.primal.name}: expected {self._n_primal_params} "
                f"arguments, got {len(args)}"
            )
        array_grads: Dict[str, np.ndarray] = {}
        full_args: List[object] = list(args)
        for p in self.primal.params:
            gname = self.layout["array_grads"].get(p.name)
            if gname is not None:
                src = args[self.primal.param_names.index(p.name)]
                n = len(src)  # type: ignore[arg-type]
                g = np.zeros(n, dtype=np.float64)
                array_grads[p.name] = g
                full_args.append(g)
        result = self.compiled(*full_args)
        if self.compiled.traces:
            base, extras = result  # type: ignore[misc]
            traces = {k: v for k, v in extras.items() if k != "cost"}
        else:
            base, traces = result, {}
        if not isinstance(base, tuple):
            base = (base,)
        named: Dict[Tuple[str, ...], float] = {}
        for key, val in zip(self.layout["ret_names"], base):
            named[tuple(key)] = val
        return named, array_grads, traces


class Gradient:
    """A compiled reverse-mode gradient of a kernel."""

    def __init__(
        self,
        k: KernelLike,
        opt_level: int = 2,
        minimal_pushes: bool = True,
    ) -> None:
        self._runner = _AdjointRunner(
            _as_ir(k), extension=None, opt_level=opt_level,
            minimal_pushes=minimal_pushes,
        )

    @property
    def source(self) -> str:
        """Generated Python source of the gradient function."""
        return self._runner.generated_source

    @property
    def adjoint_ir(self) -> N.Function:
        return self._runner.adjoint

    def execute(self, *args: object) -> GradientResult:
        """Run the gradient; see :class:`GradientResult`."""
        named, array_grads, _ = self._runner.call(args)
        res = GradientResult(value=named[("value",)])
        for key, val in named.items():
            if key[0] == "grad":
                res.gradients[key[1]] = val
        res.gradients.update(array_grads)
        return res


class ErrorEstimator:
    """A compiled error-estimating adjoint (``clad::estimate_error``).

    :param model: the error model (default: Taylor, Eq. 1).
    :param track: variable names whose per-assignment sensitivity
        ``|x*dx|`` should be traced (Fig. 9 input).
    :param opt_level: optimization pipeline level (0 disables — the
        ablation baseline).
    :param minimal_pushes: enable TBR tape minimization (ablation hook).
    """

    def __init__(
        self,
        k: KernelLike,
        model: Optional[ErrorModel] = None,
        track: Sequence[str] = (),
        opt_level: int = 2,
        minimal_pushes: bool = True,
    ) -> None:
        self.module = ErrorEstimationModule(model=model, track=track)
        self.opt_level = opt_level
        self.minimal_pushes = minimal_pushes
        self._runner = _AdjointRunner(
            _as_ir(k),
            extension=self.module,
            opt_level=opt_level,
            minimal_pushes=minimal_pushes,
            extra_bindings=self.module.bindings(),
        )
        self._batched = None  # lazily-built repro.sweep.BatchedErrorEstimator
        self._config_batched = None  # lazy repro.sweep.ConfigBatchedEstimator

    @property
    def source(self) -> str:
        """Generated Python source of the error-estimated adjoint."""
        return self._runner.generated_source

    @property
    def adjoint_ir(self) -> N.Function:
        return self._runner.adjoint

    @property
    def primal_ir(self) -> N.Function:
        """The primal IR the adjoint was generated from."""
        return self._runner.primal

    @property
    def layout(self) -> Dict[str, object]:
        """The adjoint's return-layout metadata (``meta['adjoint']``)."""
        return self._runner.layout

    def execute(self, *args: object) -> ErrorReport:
        """Run the analysis; see :class:`ErrorReport`."""
        named, array_grads, traces = self._runner.call(args)
        rep = ErrorReport(value=named[("value",)])
        for key, val in named.items():
            if key[0] == "grad":
                rep.gradients[key[1]] = val
            elif key[0] == "extra":
                if key[1] == "fp_error":
                    rep.total_error = val
                elif key[1].startswith("delta:"):
                    rep.per_variable[key[1][len("delta:"):]] = val
        rep.gradients.update(array_grads)
        rep.traces = dict(traces)
        # input variables are never assignment targets, so their
        # representation error is accounted for here (the Eq. 2 sum runs
        # over inputs too — this is how read-only data like k-Means'
        # `clusters` acquires an estimate)
        model = self.module.model
        primal = self._runner.primal
        for p in primal.params:
            if p.name not in rep.gradients:
                continue
            idx = primal.param_names.index(p.name)
            contrib = model.input_error(
                p.name, args[idx], rep.gradients[p.name]
            )
            if contrib:
                rep.per_variable[p.name] = (
                    rep.per_variable.get(p.name, 0.0) + contrib
                )
                rep.total_error += contrib
        return rep

    def execute_batch(self, *args: object) -> "BatchReport":
        """Run the analysis over a **batch of input points** at once.

        Each argument is either a lane-uniform scalar or a length-N
        array sweeping that parameter; all arrays must share one N.
        Uses the vectorized (array-at-a-time) adjoint backend when the
        kernel's structure allows it and falls back to a scalar loop
        otherwise — see :class:`repro.sweep.BatchedErrorEstimator`.
        """
        if self._batched is None:
            from repro.sweep.batch import BatchedErrorEstimator

            self._batched = BatchedErrorEstimator(self)
        return self._batched.execute(*args)

    def execute_config_batch(
        self, configs: Sequence[object], *args: object
    ) -> "ConfigBatchReport":
        """Run the analysis for **K precision configurations** at once.

        ``configs`` is a sequence of
        :class:`~repro.tuning.PrecisionConfig`; ``args`` follow the
        :meth:`execute_batch` conventions (lane-uniform scalars and/or
        length-N sweep arrays), so the result covers a K × N grid of
        (configuration, input point) pairs.  Per (config, point) the
        numbers equal what a freshly built estimator of the demoted
        kernel would report — the vectorized backend reuses this
        estimator's compiled lanes (compile-once), with a transparent
        per-config fallback where the kernel (or a config) cannot be
        expressed as lane parameters.
        """
        if self._config_batched is None:
            from repro.sweep.batch import ConfigBatchedEstimator

            self._config_batched = ConfigBatchedEstimator(self)
        return self._config_batched.execute(configs, *args)


def gradient(k: KernelLike, **kwargs: object) -> Gradient:
    """Build the reverse-mode gradient of a kernel.

    Example::

        g = repro.gradient(func)
        res = g.execute(1.0, 2.0)
        res.value, res.grad("x")
    """
    return Gradient(k, **kwargs)  # type: ignore[arg-type]


def estimate_error(
    k: KernelLike,
    model: Optional[ErrorModel] = None,
    track: Sequence[str] = (),
    **kwargs: object,
) -> ErrorEstimator:
    """Build an error-estimating adjoint of a kernel (Listing 1).

    .. deprecated:: 1.1
        Legacy wrapper, removed in 2.0 — use
        :meth:`repro.session.Session.estimate`, which serves repeated
        builds of the same kernel/model pair from the shared estimator
        memo.

    Example::

        sess = repro.Session()
        df = sess.estimate(func)
        report = df.execute(1.95e-5, 1.37e-7)
        print("Error in func:", report.total_error)
    """
    from repro.session import Session
    from repro.util.deprecation import warn_legacy

    warn_legacy("repro.estimate_error()", "Session.estimate()")
    return Session().estimate(k, model=model, track=track, **kwargs)  # type: ignore[arg-type]


# -- estimator reuse ----------------------------------------------------------
#
# Building an ErrorEstimator runs the reverse-mode transformation, the
# optimization pipeline, and compilation — ~10-100ms of work that tuning
# searches and sweep engines repeat for the *same* kernel/model pair over
# and over.  The memo is content-addressed (IR fingerprint + model
# fingerprint + options), so re-registered kernels with identical IR and
# equal model configurations share one compiled estimator.
#
# Process sharing: compiled estimators hold code objects and cannot be
# pickled, so the memo is shared with worker processes by *inheritance*
# — a fork-started pool snapshots whatever the parent memoized
# (copy-on-write), and each worker's memo then grows independently.
# Parallel search drivers (repro.search.ParallelEvaluator) prewarm the
# parent memo before forking for exactly this reason.

_ESTIMATOR_MEMO: "OrderedDict[tuple, ErrorEstimator]" = OrderedDict()
_ESTIMATOR_MEMO_MAX = 64
# process-cumulative hit/miss counts live in the process-wide metrics
# registry (misses = estimators compiled through the memo; uncacheable
# builds count as misses too); estimator_memo_stats()/Session.stats()
# are views over these instruments
_MEMO_HITS = obs_metrics.REGISTRY.counter(
    "repro_memo_hits_total", "estimator memo hits"
)
_MEMO_MISSES = obs_metrics.REGISTRY.counter(
    "repro_memo_misses_total", "estimator memo misses (compiles)"
)
_MEMO_ENTRIES = obs_metrics.REGISTRY.gauge(
    "repro_memo_entries", "estimator memo occupancy"
)
_MEMO_CAPACITY = obs_metrics.REGISTRY.gauge(
    "repro_memo_capacity", "estimator memo capacity"
)
_MEMO_CAPACITY.set(_ESTIMATOR_MEMO_MAX)
_BUILD_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_estimate_build_seconds", "adjoint build+compile latency"
)
#: guards the memo and its counters: long-lived servers (repro.serve)
#: share one process-wide memo across concurrent worker threads, and
#: an unguarded read-modify-write would corrupt occupancy/hit counts.
#: Held across a miss's compile too, so concurrent requests for the
#: same kernel/model pair build one estimator, not one per thread.
_MEMO_LOCK = threading.RLock()


def _memo_key(
    k: KernelLike,
    model: Optional[ErrorModel],
    opt_level: int,
    minimal_pushes: bool,
) -> tuple:
    """Content key of one estimator in the process-wide memo."""
    from repro.ir.fingerprint import ir_fingerprint

    return (
        ir_fingerprint(_as_ir(k)),
        model.fingerprint() if model is not None else None,
        opt_level,
        minimal_pushes,
    )


def cached_error_estimator(
    k: KernelLike,
    model: Optional[ErrorModel] = None,
    track: Sequence[str] = (),
    opt_level: int = 2,
    minimal_pushes: bool = True,
) -> ErrorEstimator:
    """Like :func:`estimate_error`, but memoized by content.

    Models that close over arbitrary callables (``cacheable = False``)
    and tracked-sensitivity estimators are never memoized.
    """
    if (model is not None and not model.cacheable) or track:
        _MEMO_MISSES.inc()
        return ErrorEstimator(
            k, model=model, track=track, opt_level=opt_level,
            minimal_pushes=minimal_pushes,
        )
    key = _memo_key(k, model, opt_level, minimal_pushes)
    with _MEMO_LOCK:
        est = _ESTIMATOR_MEMO.get(key)
        if est is None:
            _MEMO_MISSES.inc()
            est = ErrorEstimator(
                k, model=model, opt_level=opt_level,
                minimal_pushes=minimal_pushes,
            )
            _ESTIMATOR_MEMO[key] = est
            while len(_ESTIMATOR_MEMO) > _ESTIMATOR_MEMO_MAX:
                _ESTIMATOR_MEMO.popitem(last=False)
        else:
            _MEMO_HITS.inc()
            _ESTIMATOR_MEMO.move_to_end(key)
        _MEMO_ENTRIES.set(len(_ESTIMATOR_MEMO))
        return est


def warm_start_estimator_memo(
    kernels: Sequence[KernelLike],
    models: Sequence[Optional[ErrorModel]] = (None,),
    opt_level: int = 2,
    minimal_pushes: bool = True,
) -> int:
    """Pre-build (compile) estimators into the process-wide memo.

    Returns the number of estimators newly compiled (already-memoized
    combinations are skipped; uncacheable models are ignored).

    Two callers benefit: parallel search drivers fork worker pools that
    inherit whatever the parent memoized (copy-on-write), so warming
    the memo *before* the fork turns per-worker compiles into shared
    ones; and multi-scenario orchestrations (resumed or not) front-load
    every kernel/model compile once instead of paying it lazily inside
    each scenario's run.
    """
    built = 0
    for k in kernels:
        for model in models:
            if model is not None and not model.cacheable:
                continue
            key = _memo_key(k, model, opt_level, minimal_pushes)
            with _MEMO_LOCK:
                if key in _ESTIMATOR_MEMO:
                    continue
                cached_error_estimator(
                    k, model=model, opt_level=opt_level,
                    minimal_pushes=minimal_pushes,
                )
            built += 1
    return built


def _memo_stats() -> Dict[str, int]:
    """Registry view of the estimator memo (non-deprecated internal
    form of :func:`estimator_memo_stats`; same dict shape)."""
    with _MEMO_LOCK:
        return {
            "entries": len(_ESTIMATOR_MEMO),
            "capacity": _ESTIMATOR_MEMO_MAX,
            "hits": _MEMO_HITS.value,
            "misses": _MEMO_MISSES.value,
        }


def estimator_memo_stats() -> Dict[str, int]:
    """Occupancy of the process-wide estimator memo.

    .. deprecated:: 1.3
        Legacy wrapper, removed in 2.0 — the counts live in
        :data:`repro.obs.metrics.REGISTRY` (``repro_memo_*``); read
        them via :meth:`repro.session.Session.stats`.

    Useful for sizing parallel search runs: entries memoized in the
    parent before a fork-started worker pool spawns are inherited by
    every worker for free; entries built afterwards are per-worker.

    ``hits``/``misses`` are process-cumulative; ``entries``/``capacity``
    are gauges.
    """
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.core.api.estimator_memo_stats()",
        'Session.stats()["estimator_memo"]',
    )
    return _memo_stats()


def clear_estimator_memo() -> None:
    """Drop all memoized estimators (test isolation helper).

    The ``repro_memo_*`` registry counters reset too, so tests can
    assert per-scope hit deltas.
    """
    with _MEMO_LOCK:
        _ESTIMATOR_MEMO.clear()
        obs_metrics.REGISTRY.reset(prefix="repro_memo_")
        _MEMO_CAPACITY.set(_ESTIMATOR_MEMO_MAX)
