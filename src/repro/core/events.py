"""The adjoint-generation callback system.

Clad exposes events during adjoint creation that extensions subscribe to;
CHEF-FP is exactly such an extension (paper §III-D).  Our equivalent is
:class:`AdjointExtension`: the reverse-mode transformer calls its hooks
at well-defined points and splices the returned statements into the
generated function.  The Error Estimation Module implements this
interface; so can any user extension (e.g. value-range recorders).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.ir import nodes as N

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.reverse import AdjointContext


class AdjointExtension:
    """Base class: all hooks are no-ops.

    Hook order during generation of one adjoint function:

    1. :meth:`on_begin` — once; returned statements become prologue.
    2. :meth:`on_assign` — for every differentiable (float) assignment
       processed in the backward sweep, *before* state restoration, so
       the returned statements observe the assigned value and its
       adjoint (``AssignError`` in the paper's Algorithm 1).
    3. :meth:`on_end` — once; returned statements run after the backward
       sweep (``FinalizeEE``).
    4. :meth:`extra_returns` — name/expression pairs appended to the
       adjoint's return tuple.
    """

    def on_begin(self, ctx: "AdjointContext") -> None:
        """Reset per-generation state.  Called once per generation pass
        (the transformer runs two passes for tape minimization), before
        any other hook."""
        return None

    def prologue(self, ctx: "AdjointContext") -> List[N.Stmt]:
        """Prologue statements (e.g. declare error registers).  Called
        after the sweeps are generated, so registers discovered during
        :meth:`on_assign` can be declared here."""
        return []

    def on_assign(
        self,
        ctx: "AdjointContext",
        target: N.LValue,
        adjoint: N.Expr,
        stmt: N.Assign,
    ) -> List[N.Stmt]:
        """Statements to splice after computing ``adjoint`` for ``target``.

        :param target: a clone of the assignment target (safe to embed).
        :param adjoint: expression reading the target's current adjoint
            (a temporary holding d(output)/d(target) at this statement).
        :param stmt: the primal assignment being processed.
        """
        return []

    def on_end(self, ctx: "AdjointContext") -> List[N.Stmt]:
        """Epilogue statements (e.g. finalize the total error)."""
        return []

    def extra_returns(
        self, ctx: "AdjointContext"
    ) -> List[Tuple[str, N.Expr]]:
        """``(name, expr)`` pairs appended to the adjoint return tuple."""
        return []
