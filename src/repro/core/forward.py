"""Forward-mode (tangent) AD.

Clad implements both forward and adjoint modes; CHEF-FP's error analysis
uses the adjoint, but forward mode is provided for completeness and is
used in tests as an independent oracle for gradients (forward-over-seed
must agree with the reverse sweep and with finite differences).

The transformation is structural: control flow is preserved, and every
float assignment ``x = e`` is augmented with a tangent update
``_t_x = jvp(e)`` computed from pre-assignment values.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.hoist import hoist_locals
from repro.frontend.intrinsics import INTRINSICS
from repro.frontend.registry import Kernel
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType, ScalarType
from repro.ir.typecheck import infer_types
from repro.util.errors import DifferentiationError


def tangent_name(var: str) -> str:
    """Name of the tangent variable/array shadowing ``var``."""
    return f"_t_{var}"


def jvp(e: N.Expr) -> N.Expr:
    """Tangent (directional-derivative) expression of ``e``.

    References ``_t_<v>`` tangent variables for float leaves; constant
    folding removes the structural zeros afterwards.
    """
    if isinstance(e, N.Const):
        return b.fzero()
    if isinstance(e, N.Name):
        if e.dtype is not None and e.dtype.is_float:
            return b.name(tangent_name(e.id), DType.F64)
        return b.fzero()
    if isinstance(e, N.Index):
        if e.dtype is not None and e.dtype.is_float:
            return b.index(
                tangent_name(e.base), b.clone(e.index), DType.F64
            )
        return b.fzero()
    if isinstance(e, N.BinOp):
        if e.op in N.CMPOPS or e.op in N.BOOLOPS or e.op in ("//", "%"):
            return b.fzero()
        dl, dr = jvp(e.left), jvp(e.right)
        if e.op == "+":
            return b.add(dl, dr)
        if e.op == "-":
            return b.sub(dl, dr)
        if e.op == "*":
            return b.add(
                b.mul(dl, b.clone(e.right)), b.mul(b.clone(e.left), dr)
            )
        if e.op == "/":
            return b.sub(
                b.div(dl, b.clone(e.right)),
                b.div(
                    b.mul(b.clone(e.left), dr),
                    b.mul(b.clone(e.right), b.clone(e.right)),
                ),
            )
        raise DifferentiationError(f"jvp: operator {e.op!r}")
    if isinstance(e, N.UnaryOp):
        if e.op == "-":
            return b.neg(jvp(e.operand))
        return b.fzero()
    if isinstance(e, N.Call):
        info = INTRINSICS.get(e.fn)
        if info is None:
            raise DifferentiationError(f"jvp: unknown intrinsic {e.fn!r}")
        if info.deriv is None:
            return b.fzero()
        total: Optional[N.Expr] = None
        for arg, partial in zip(e.args, info.deriv(e.args)):
            term = b.mul(partial, jvp(arg))
            total = term if total is None else b.add(total, term)
        return total if total is not None else b.fzero()
    if isinstance(e, N.Cast):
        return jvp(e.operand)
    raise DifferentiationError(f"jvp: expression {type(e).__name__}")


class ForwardModeTransformer:
    """Builds the tangent function of a primal IR function."""

    def __init__(self, fn: N.Function) -> None:
        if not fn.body or not isinstance(fn.body[-1], N.Return):
            raise DifferentiationError(
                f"{fn.name}: forward mode requires a final return"
            )
        self.primal = hoist_locals(fn)
        self._tmp = 0

    def transform(self) -> N.Function:
        fn = self.primal
        decls = [s for s in fn.body if isinstance(s, N.VarDecl)]
        core = [
            s for s in fn.body if not isinstance(s, (N.VarDecl, N.Return))
        ]
        ret = fn.body[-1]
        assert isinstance(ret, N.Return)
        body: List[N.Stmt] = []
        for d in decls:
            body.append(N.VarDecl(d.name, d.dtype, None))
            if d.dtype.is_float:
                body.append(
                    N.VarDecl(tangent_name(d.name), DType.F64, b.fzero())
                )
        for p in fn.params:
            if isinstance(p.type, ScalarType) and p.type.dtype.is_float:
                body.append(
                    N.VarDecl(tangent_name(p.name), DType.F64, b.fzero())
                )
        # seed marker: replaced at execution time via a dedicated param
        body.append(N.VarDecl("_seed_done", DType.B1, b.const(True)))
        body.extend(self._transform_body(core))
        body.append(
            N.ReturnTuple([b.clone(ret.value), jvp(ret.value)])
        )
        params = [b.clone(p) for p in fn.params]
        tangent_arrays = {}
        for p in fn.params:
            if isinstance(p.type, ArrayType) and p.type.dtype.is_float:
                tname = tangent_name(p.name)
                params.append(
                    N.Param(tname, ArrayType(DType.F64), differentiable=False)
                )
                tangent_arrays[p.name] = tname
        # scalar seeds as extra params
        seed_params = []
        for p in fn.params:
            if isinstance(p.type, ScalarType) and p.type.dtype.is_float:
                sname = f"_s_{p.name}"
                params.append(
                    N.Param(sname, ScalarType(DType.F64), differentiable=False)
                )
                seed_params.append((p.name, sname))
        # apply seeds right after tangent decls: _t_p = _s_p
        seed_stmts: List[N.Stmt] = [
            N.Assign(
                b.name(tangent_name(pn), DType.F64), b.name(sn, DType.F64)
            )
            for pn, sn in seed_params
        ]
        insert_at = next(
            i
            for i, s in enumerate(body)
            if isinstance(s, N.VarDecl) and s.name == "_seed_done"
        )
        body[insert_at:insert_at + 1] = seed_stmts
        out = N.Function(
            name=f"{fn.name}_fwd",
            params=params,
            body=body,
            ret_dtype=None,
        )
        out.meta["forward"] = {
            "primal_name": fn.name,
            "tangent_arrays": tangent_arrays,
            "seed_params": [pn for pn, _ in seed_params],
        }
        infer_types(out)
        return out

    def _transform_body(self, body: List[N.Stmt]) -> List[N.Stmt]:
        out: List[N.Stmt] = []
        for s in body:
            out.extend(self._transform_stmt(s))
        return out

    def _transform_stmt(self, s: N.Stmt) -> List[N.Stmt]:
        if isinstance(s, N.Assign):
            tdt = s.target.dtype or DType.F64
            if not tdt.is_float:
                return [b.clone(s)]
            self._tmp += 1
            tmp = f"_ft{self._tmp}"
            tangent_target: N.LValue
            if isinstance(s.target, N.Name):
                tangent_target = b.name(
                    tangent_name(s.target.id), DType.F64
                )
            else:
                tangent_target = b.index(
                    tangent_name(s.target.base),
                    b.clone(s.target.index),
                    DType.F64,
                )
            return [
                N.VarDecl(tmp, DType.F64, jvp(s.value)),
                b.clone(s),
                N.Assign(tangent_target, b.name(tmp, DType.F64)),
            ]
        if isinstance(s, N.If):
            out = N.If(
                b.clone(s.cond),
                self._transform_body(s.then),
                self._transform_body(s.orelse),
            )
            return [out]
        if isinstance(s, N.For):
            return [
                N.For(
                    s.var,
                    b.clone(s.lo),
                    b.clone(s.hi),
                    b.clone(s.step),
                    self._transform_body(s.body),
                )
            ]
        if isinstance(s, N.While):
            return [
                N.While(b.clone(s.cond), self._transform_body(s.body))
            ]
        if isinstance(s, (N.Break, N.ExprStmt)):
            return [b.clone(s)]
        raise DifferentiationError(
            f"forward mode: cannot transform {type(s).__name__}"
        )


class ForwardDerivative:
    """A compiled forward-mode derivative d(output)/d(wrt-parameter)."""

    def __init__(self, k: Union[Kernel, N.Function], wrt: str, opt_level: int = 1) -> None:
        fn = k.ir if isinstance(k, Kernel) else k
        self.primal = fn
        self.wrt = wrt
        tangent = ForwardModeTransformer(fn).transform()
        if opt_level > 0:
            from repro.opt.pipeline import optimize

            tangent = optimize(tangent, level=opt_level)
        self.tangent_ir = tangent
        self.meta = tangent.meta["forward"]
        if wrt not in self.meta["seed_params"] and wrt not in self.meta["tangent_arrays"]:
            raise DifferentiationError(
                f"{fn.name}: cannot differentiate w.r.t. {wrt!r}"
            )
        from repro.codegen.compile import compile_raw

        self._compiled = compile_raw(tangent)

    def execute(self, *args: object) -> Tuple[float, float]:
        """Run; returns ``(value, d value / d wrt)``."""
        full = list(args)
        primal_params = self.primal.params
        for p in primal_params:
            if p.name in self.meta["tangent_arrays"]:
                src = args[self.primal.param_names.index(p.name)]
                t = np.zeros(len(src), dtype=np.float64)  # type: ignore[arg-type]
                if p.name == self.wrt:
                    t[:] = 1.0
                full.append(t)
        for pn in self.meta["seed_params"]:
            full.append(1.0 if pn == self.wrt else 0.0)
        value, dvalue = self._compiled(*full)  # type: ignore[misc]
        return value, dvalue


def forward_derivative(
    k: Union[Kernel, N.Function], wrt: str, **kwargs: object
) -> ForwardDerivative:
    """Build a forward-mode directional derivative w.r.t. one parameter."""
    return ForwardDerivative(k, wrt, **kwargs)  # type: ignore[arg-type]
