"""The Error Estimation Module (paper §III-D).

Subscribes to the adjoint generator's callbacks and splices error-
estimation code into the generated derivative:

* per differentiable assignment, the configured :class:`ErrorModel`'s
  expression is evaluated into a fresh temporary and accumulated into a
  per-variable register ``_delta_<var>`` and the running total
  ``_fp_total_err`` (``AssignError``),
* variables listed in ``track`` additionally append their instantaneous
  sensitivity ``|x * dx|`` to a trace (the data behind the paper's
  Fig. 9 heat map),
* the epilogue (``FinalizeEE``) freezes the total, and the per-variable
  registers are exported through the adjoint's return tuple.

Because the registers are plain locals of the generated function, the
whole EE computation is visible to the optimization pipeline — the
paper's central performance argument.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.core.events import AdjointExtension
from repro.core.models import ErrorModel, TaylorModel
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import DType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.reverse import AdjointContext

TOTAL_REG = "_fp_total_err"


def delta_register(var: str) -> str:
    """Name of the per-variable error register for ``var``."""
    return f"_delta_{var}"


class ErrorEstimationModule(AdjointExtension):
    """CHEF-FP's EE module as an adjoint-generation extension."""

    def __init__(
        self,
        model: ErrorModel | None = None,
        track: Sequence[str] = (),
    ) -> None:
        self.model = model or TaylorModel()
        self.track = tuple(track)
        self._registers: List[str] = []

    # -- extension hooks ----------------------------------------------------
    def on_begin(self, ctx: "AdjointContext") -> None:
        self._registers = []
        self.model.reset()

    def on_assign(
        self,
        ctx: "AdjointContext",
        target: N.LValue,
        adjoint: N.Expr,
        stmt: N.Assign,
    ) -> List[N.Stmt]:
        expr = self.model.error_expr(ctx, target, adjoint, stmt)
        out: List[N.Stmt] = []
        var = target.id if isinstance(target, N.Name) else target.base
        if expr is not None:
            if var not in self._registers:
                self._registers.append(var)
            e = ctx.new_temp("_e", DType.F64)
            out.append(N.Assign(b.name(e, DType.F64), expr))
            out.append(
                b.accumulate(
                    b.name(delta_register(var), DType.F64),
                    b.name(e, DType.F64),
                )
            )
            out.append(
                b.accumulate(
                    b.name(TOTAL_REG, DType.F64), b.name(e, DType.F64)
                )
            )
        if var in self.track:
            x = (
                b.name(target.id, target.dtype or DType.F64)
                if isinstance(target, N.Name)
                else b.index(
                    target.base,
                    b.clone(target.index),
                    target.dtype or DType.F64,
                )
            )
            out.append(
                N.TraceAppend(var, b.fabs(b.mul(x, b.clone(adjoint))))
            )
        return out

    def prologue(self, ctx: "AdjointContext") -> List[N.Stmt]:
        stmts: List[N.Stmt] = [
            N.VarDecl(TOTAL_REG, DType.F64, b.fzero())
        ]
        for var in self._registers:
            stmts.append(
                N.VarDecl(delta_register(var), DType.F64, b.fzero())
            )
        return stmts

    def on_end(self, ctx: "AdjointContext") -> List[N.Stmt]:
        # FinalizeEE: the total is maintained incrementally; nothing to
        # compute, but the hook point exists for custom finalization.
        return []

    def extra_returns(
        self, ctx: "AdjointContext"
    ) -> List[Tuple[str, N.Expr]]:
        out: List[Tuple[str, N.Expr]] = [
            ("fp_error", b.name(TOTAL_REG, DType.F64))
        ]
        for var in self._registers:
            out.append(
                (f"delta:{var}", b.name(delta_register(var), DType.F64))
            )
        return out

    def bindings(self) -> Dict[str, object]:
        """Runtime bindings required by the model's generated code."""
        return self.model.bindings()
