"""Error models.

An error model maps one differentiable assignment — (value, adjoint) —
to an IR expression computing that assignment's floating-point error
contribution (paper §II-A and §III-E).  The Error Estimation Module
accumulates the returned expressions into per-variable registers and the
total error.

Built-in models:

* :class:`TaylorModel` — the default model of Eq. 1:
  ``A_f = |eps_m * x * dx|`` with ``eps_m`` the machine epsilon of the
  assignment's storage precision.
* :class:`AdaptModel` — the ADAPT model of Eq. 2:
  ``Δ = Σ |df/dx_i| * (x_i - (float)x_i)`` — the error a demotion to
  binary32 *would* introduce, used for mixed-precision tuning.
* :class:`ApproxModel` — Algorithm 2: for variables mapped to intrinsic
  functions, ``|dx * (f(x) - f̃(x))|`` where ``f̃`` is the FastApprox
  variant.
* :class:`ExternalModel` — the "call a user function" path of Listing 3:
  synthesizes ``user_err(dx, x, site)`` calls bound to an arbitrary
  Python callable ``(dx, x, name) -> float``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.types import DType, machine_eps

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.reverse import AdjointContext


def _target_name(target: N.LValue) -> str:
    return target.id if isinstance(target, N.Name) else target.base


def _target_read(target: N.LValue) -> N.Expr:
    if isinstance(target, N.Name):
        return b.name(target.id, target.dtype or DType.F64)
    return b.index(
        target.base, b.clone(target.index), target.dtype or DType.F64
    )


class ErrorModel:
    """Base class of error models (``FPErrorEstimationModel`` analogue)."""

    name = "base"

    #: whether results produced under this model may be memoized across
    #: calls/processes — models closing over arbitrary Python callables
    #: (:class:`ExternalModel`) must opt out
    cacheable = True

    def fingerprint(self) -> str:
        """Stable identity string for result caching and estimator reuse.

        Two model instances with the same fingerprint must generate the
        same error code and the same host-side input-error values.
        """
        return self.name

    def error_expr(
        self,
        ctx: "AdjointContext",
        target: N.LValue,
        adjoint: N.Expr,
        stmt: N.Assign,
    ) -> Optional[N.Expr]:
        """Error-contribution expression for one assignment.

        Return ``None`` to skip this assignment entirely (no register
        update, no accumulation).
        """
        raise NotImplementedError

    def bindings(self) -> Dict[str, object]:
        """Extra runtime bindings required by generated error code."""
        return {}

    def reset(self) -> None:
        """Clear per-generation state (the adjoint generator runs two
        passes; stateful models must restart cleanly)."""
        return None

    def input_error(self, name: str, value, adjoint) -> float:
        """Error contribution of an *input* variable (never assigned,
        so no ``AssignError`` site exists for it).

        Evaluated host-side after the adjoint run, with the parameter's
        value(s) and final adjoint(s) — scalars or numpy arrays.  The
        Eq. 2 sum runs over inputs as well as assignments, which is how
        read-only data like k-Means' ``clusters`` acquires an error
        estimate (Table III).
        """
        return 0.0

    def input_error_batch(self, name: str, values, adjoints):
        """Vectorized :meth:`input_error` for a *scalar* parameter over a
        batch: ``values`` and ``adjoints`` are length-N arrays and the
        result is the length-N array of per-sample contributions.

        The default loops over :meth:`input_error`; the built-in models
        override with closed-form numpy.
        """
        import numpy as np

        return np.asarray(
            [
                self.input_error(name, float(v), float(a))
                for v, a in zip(np.asarray(values), np.asarray(adjoints))
            ],
            dtype=np.float64,
        )


class TaylorModel(ErrorModel):
    """Default first-order Taylor model (paper Eq. 1).

    Per assignment to ``x``: ``err = |eps_m(x) * x * dx|``, where
    ``eps_m`` is the machine epsilon of the variable's storage precision.
    Produces a (loose) upper bound on accumulated rounding error.
    """

    name = "taylor"

    def __init__(self, precision: Optional[DType] = None) -> None:
        #: override: estimate as if every variable were stored at this
        #: precision (useful to ask "what if everything were f32?")
        self.precision = precision

    def fingerprint(self) -> str:
        p = self.precision.value if self.precision is not None else "-"
        return f"{self.name}:{p}"

    def error_expr(self, ctx, target, adjoint, stmt):
        dt = target.dtype or DType.F64
        if not dt.is_float:
            return None
        eps = machine_eps(self.precision or dt)
        return b.fabs(
            b.mul(
                b.const(eps),
                b.mul(_target_read(target), b.clone(adjoint)),
            )
        )

    def input_error(self, name, value, adjoint):
        import numpy as np

        eps = machine_eps(self.precision or DType.F64)
        return float(np.sum(np.abs(eps * np.asarray(value) * np.asarray(adjoint))))

    def input_error_batch(self, name, values, adjoints):
        import numpy as np

        eps = machine_eps(self.precision or DType.F64)
        return np.abs(
            eps * np.asarray(values, dtype=np.float64) * np.asarray(adjoints)
        )


class AdaptModel(ErrorModel):
    """The ADAPT-FP model (paper Eq. 2, Listing 3).

    Per assignment to ``x``: ``err = |dx * (x - (float)x)|`` — the exact
    first-order effect of demoting the stored value to binary32.  Zero
    for values already representable in binary32; this is the model the
    paper uses for the mixed-precision benchmarks (Arc Length, Simpsons,
    k-Means, HPCCG).
    """

    name = "adapt"

    def __init__(self, demote_to: DType = DType.F32) -> None:
        self.demote_to = demote_to

    def fingerprint(self) -> str:
        return f"{self.name}:{self.demote_to.value}"

    #: saturation for values that overflow the demoted format: their
    #: demotion delta is ±inf, and inf·0 adjoints would poison the total
    #: with NaNs — clamp to a huge finite cost instead ("cannot demote")
    _SATURATE = 1e300

    def error_expr(self, ctx, target, adjoint, stmt):
        dt = target.dtype or DType.F64
        if not dt.is_float:
            return None
        x = _target_read(target)
        delta = b.sub(b.clone(x), b.cast(self.demote_to, b.clone(x)))
        delta.dtype = DType.F64
        clamped = b.call(
            "fmin", [b.fabs(delta), b.const(self._SATURATE)],
            dtype=DType.F64,
        )
        return b.mul(clamped, b.fabs(b.clone(adjoint)))

    def input_error(self, name, value, adjoint):
        import numpy as np

        from repro.fp.precision import demotion_error

        v = np.asarray(value, dtype=np.float64)
        delta = np.clip(
            np.abs(demotion_error(v, self.demote_to)),
            0.0,
            self._SATURATE,
        )
        return float(np.sum(np.abs(np.asarray(adjoint)) * delta))

    def input_error_batch(self, name, values, adjoints):
        import numpy as np

        from repro.fp.precision import demotion_error

        v = np.asarray(values, dtype=np.float64)
        delta = np.clip(
            np.abs(demotion_error(v, self.demote_to)), 0.0, self._SATURATE
        )
        return np.abs(np.asarray(adjoints)) * delta


class ApproxModel(ErrorModel):
    """Approximate-function error model (paper Algorithm 2).

    :param var_to_fn: map from variable name to the intrinsic whose
        approximate (FastApprox) variant consumes that variable — the
        "map of variables of interest" S of Algorithm 2.  For a variable
        ``x`` mapped to ``f``: ``err = |dx * (f(x) - fast_f(x))|``.
    :param fallthrough: optional second model applied to unmapped
        variables (``None`` skips them, as Algorithm 2 does).

    Faithfulness note: Algorithm 2 multiplies Δ by the adjoint of the
    function's *input* variable (``dx``), which differs from the exact
    first-order effect — that would multiply by the adjoint of the
    function's *output* — by a factor of f′(x).  We reproduce the
    paper's formulation verbatim; this is why the paper's own Table IV
    estimates differ from its actual errors by up to ~8x, a shape our
    Table IV reproduces.
    """

    name = "approx"

    _SUPPORTED = {"exp", "log", "log2", "exp2", "sqrt"}

    def __init__(
        self,
        var_to_fn: Dict[str, str],
        fallthrough: Optional[ErrorModel] = None,
    ) -> None:
        for v, fn in var_to_fn.items():
            if fn not in self._SUPPORTED:
                raise ValueError(
                    f"no FastApprox variant for intrinsic {fn!r} "
                    f"(variable {v!r})"
                )
        self.var_to_fn = dict(var_to_fn)
        self.fallthrough = fallthrough

    @property
    def cacheable(self) -> bool:  # type: ignore[override]
        return self.fallthrough is None or self.fallthrough.cacheable

    def fingerprint(self) -> str:
        m = ",".join(f"{v}={f}" for v, f in sorted(self.var_to_fn.items()))
        ft = self.fallthrough.fingerprint() if self.fallthrough else "-"
        return f"{self.name}:{m}:{ft}"

    def _lookup(self, name: str) -> Optional[str]:
        """Resolve a variable name to its mapped intrinsic.

        Kernel inlining renames callee locals with ``_in<k>`` suffixes
        (possibly stacked), so ``expin`` in the map also matches
        ``expin_in1`` and ``expin_in1_in3``.
        """
        if name in self.var_to_fn:
            return self.var_to_fn[name]
        for key, fn in self.var_to_fn.items():
            if name.startswith(key + "_in"):
                return fn
        return None

    def error_expr(self, ctx, target, adjoint, stmt):
        dt = target.dtype or DType.F64
        if not dt.is_float:
            return None
        name = _target_name(target)
        fn = self._lookup(name)
        if fn is None:
            if self.fallthrough is not None:
                return self.fallthrough.error_expr(
                    ctx, target, adjoint, stmt
                )
            return None
        x = _target_read(target)
        delta = b.sub(
            b.call(fn, [b.clone(x)], dtype=DType.F64),
            b.call(f"fast_{fn}", [b.clone(x)], dtype=DType.F64),
        )
        return b.fabs(b.mul(b.clone(adjoint), delta))

    def input_error(self, name, value, adjoint):
        import numpy as np

        from repro.fp import fastapprox as fa

        fn = self._lookup(name)
        if fn is None:
            if self.fallthrough is not None:
                return self.fallthrough.input_error(name, value, adjoint)
            return 0.0
        exact = fa.EXACT_REFERENCE[fn]
        approx = fa.FAST_VARIANTS[fn]
        v = np.atleast_1d(np.asarray(value, dtype=np.float64))
        a = np.atleast_1d(np.asarray(adjoint, dtype=np.float64))
        total = 0.0
        for vi, ai in zip(v, a):
            total += abs(ai * (exact(vi) - approx(vi)))
        return float(total)

    def bindings(self):
        if self.fallthrough is not None:
            return self.fallthrough.bindings()
        return {}


class CenaModel(ErrorModel):
    """Signed first-order error estimation (CENA-style; Langlois 2000).

    The paper's related-work section credits the CENA method with
    improving estimate accuracy by tracking the *signed* first-order
    effect of each rounding so that cancelling errors cancel in the
    estimate too.  Per assignment: ``err = dx · (x − (float)x)`` with no
    absolute value; the per-variable registers and the total therefore
    hold signed sums, and :attr:`ErrorReport.total_error` reports the
    magnitude of the *net* error — a tighter (but no longer
    conservative) estimate than :class:`AdaptModel`'s triangle-
    inequality bound.

    Extension beyond the paper's evaluation (which uses Eq. 2); used by
    the accuracy-comparison tests and available to users who want net-
    effect estimates rather than worst-case bounds.
    """

    name = "cena"

    _SATURATE = 1e300

    def __init__(self, demote_to: DType = DType.F32) -> None:
        self.demote_to = demote_to

    def fingerprint(self) -> str:
        return f"{self.name}:{self.demote_to.value}"

    def error_expr(self, ctx, target, adjoint, stmt):
        dt = target.dtype or DType.F64
        if not dt.is_float:
            return None
        x = _target_read(target)
        delta = b.sub(b.clone(x), b.cast(self.demote_to, b.clone(x)))
        delta.dtype = DType.F64
        # saturate via fmax/fmin to keep inf·0 NaNs out of the sum
        clamped = b.call(
            "fmax",
            [
                b.call(
                    "fmin", [delta, b.const(self._SATURATE)],
                    dtype=DType.F64,
                ),
                b.const(-self._SATURATE),
            ],
            dtype=DType.F64,
        )
        return b.mul(b.clone(adjoint), clamped)

    def input_error(self, name, value, adjoint):
        import numpy as np

        from repro.fp.precision import demotion_error

        v = np.asarray(value, dtype=np.float64)
        delta = np.clip(
            demotion_error(v, self.demote_to),
            -self._SATURATE,
            self._SATURATE,
        )
        return float(np.sum(np.asarray(adjoint) * delta))

    def input_error_batch(self, name, values, adjoints):
        import numpy as np

        from repro.fp.precision import demotion_error

        v = np.asarray(values, dtype=np.float64)
        delta = np.clip(
            demotion_error(v, self.demote_to), -self._SATURATE, self._SATURATE
        )
        return np.asarray(adjoints) * delta


class ExternalModel(ErrorModel):
    """Synthesize calls to a user-supplied Python error function.

    The paper's Listing 3 builds a call to ``clad::getErrorVal(dx, x,
    name)``; here ``user_fn(dx, x, name)`` is any Python callable.  Each
    assignment site gets a stable integer id that the generated call
    passes; the binding shim translates it back to the variable name.
    """

    name = "external"

    #: closes over an arbitrary Python callable — never memoize results
    cacheable = False

    def __init__(self, user_fn: Callable[[float, float, str], float]) -> None:
        self.user_fn = user_fn
        self._site_names: List[str] = []

    def reset(self) -> None:
        # clear in place: the runtime binding shim closes over this list
        del self._site_names[:]

    def error_expr(self, ctx, target, adjoint, stmt):
        dt = target.dtype or DType.F64
        if not dt.is_float:
            return None
        name = _target_name(target)
        site = len(self._site_names)
        self._site_names.append(name)
        return b.call(
            "user_err",
            [b.clone(adjoint), _target_read(target), b.const(site)],
            dtype=DType.F64,
        )

    def input_error(self, name, value, adjoint):
        import numpy as np

        v = np.atleast_1d(np.asarray(value, dtype=np.float64))
        a = np.atleast_1d(np.asarray(adjoint, dtype=np.float64))
        return float(
            sum(abs(self.user_fn(ai, vi, name)) for vi, ai in zip(v, a))
        )

    def bindings(self):
        names = self._site_names
        user_fn = self.user_fn

        def _user_err(dx: float, x: float, site: int) -> float:
            return float(user_fn(dx, x, names[int(site)]))

        return {"_i_user_err": _user_err}
