"""Result containers for gradient and error-estimation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

import numpy as np

GradValue = Union[float, np.ndarray]


@dataclass
class GradientResult:
    """Output of one adjoint execution.

    :ivar value: the primal return value.
    :ivar gradients: d(value)/d(param) for every differentiable float
        parameter — floats for scalars, arrays for array parameters.
    """

    value: float
    gradients: Dict[str, GradValue] = field(default_factory=dict)

    def grad(self, param: str) -> GradValue:
        """Gradient with respect to ``param``.

        :raises KeyError: if the parameter is not differentiable.
        """
        return self.gradients[param]


@dataclass
class ErrorReport(GradientResult):
    """Output of one error-estimation execution (paper Listing 1's
    ``fp_error`` plus per-variable detail).

    :ivar total_error: the accumulated FP error estimate for the whole
        function under the configured error model.
    :ivar per_variable: per-variable error contributions
        (``_delta_<var>`` registers) — the input to mixed-precision
        tuning decisions and Table III.
    :ivar traces: for each tracked variable, the per-assignment
        sensitivity samples ``|x * dx|`` in *backward sweep order* (i.e.
        reverse execution order); callers reverse/reshape as needed
        (Fig. 9).
    """

    total_error: float = 0.0
    per_variable: Dict[str, float] = field(default_factory=dict)
    traces: Dict[str, List[float]] = field(default_factory=dict)

    def dominant_variables(self, k: int = 5) -> List[str]:
        """The ``k`` variables with the largest error contributions."""
        return [
            v
            for v, _ in sorted(
                self.per_variable.items(),
                key=lambda kv: kv[1],
                reverse=True,
            )[:k]
        ]

    def __str__(self) -> str:
        lines = [
            f"ErrorReport(value={self.value:.17g}, "
            f"total_error={self.total_error:.6g})"
        ]
        for v, e in sorted(
            self.per_variable.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  delta[{v}] = {e:.6g}")
        return "\n".join(lines)
