"""Route table of the job service — pure request → (status, payload).

Kept free of sockets and threads so the whole API surface is testable
by calling :meth:`ServeApp.handle` with a synthetic
:class:`~repro.serve.http.HttpRequest`; the asyncio server in
:mod:`repro.serve.server` is just transport around this.

Endpoints (all JSON unless noted)::

    GET    /v1/healthz          liveness: ok|degraded (503 draining)
    GET    /v1/metrics          service + session + cache telemetry
    GET    /v1/metrics?format=prom  Prometheus text exposition
    GET    /v1/jobs             job listing (?state= filter)
    POST   /v1/jobs             submit a job spec (dedupes by content)
    GET    /v1/jobs/{id}        job state + live search progress
    GET    /v1/jobs/{id}/result result payload (202 while pending)
    DELETE /v1/jobs/{id}        cancel

Submissions carry a request id (client ``X-Request-Id`` header, or a
generated one) that is stamped on the job and echoed in the response
headers — the same id appears on the job's ``serve.job`` root span
when tracing is enabled, joining HTTP traffic to trace files.
"""

from __future__ import annotations

import uuid
from typing import Callable, Dict, Tuple

from repro.serve.http import HttpError, HttpRequest, PlainText
from repro.serve.jobs import (
    COMPLETED,
    JobRegistry,
    JobSpec,
    QueueFullError,
    RUNNING,
    QUEUED,
)
from repro.util.errors import ConfigError, UnknownNameError

#: fallback retry hint when the registry can't provide a live one
RETRY_AFTER_S = 2

Response = Tuple[int, object, Dict[str, str]]


class ServeApp:
    """Dispatches parsed requests onto a :class:`JobRegistry`."""

    def __init__(
        self,
        registry: JobRegistry,
        metrics,
        is_draining: Callable[[], bool] = lambda: False,
    ) -> None:
        self.registry = registry
        self.metrics = metrics
        self.is_draining = is_draining

    # -- dispatch ------------------------------------------------------------
    def handle(self, req: HttpRequest) -> Response:
        try:
            return self._route(req)
        except HttpError as exc:
            return exc.status, {"error": exc.message}, {}
        except (ConfigError, UnknownNameError) as exc:
            status = 404 if isinstance(exc, UnknownNameError) else 400
            return status, {"error": str(exc)}, {}
        except QueueFullError as exc:
            wait = self._retry_after()
            return (
                429,
                {"error": str(exc), "retry_after_s": wait},
                {"Retry-After": str(wait)},
            )
        except Exception as exc:  # noqa: BLE001 - keep the server up
            return (
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                {},
            )

    def _route(self, req: HttpRequest) -> Response:
        path, method = req.path.rstrip("/") or "/", req.method
        if path == "/v1/healthz":
            self._require(method, "GET")
            return self._healthz()
        if path == "/v1/metrics":
            self._require(method, "GET")
            fmt = req.query.get("format", "json")
            if fmt == "prom":
                return 200, PlainText(self.metrics.render_prom()), {}
            if fmt != "json":
                raise HttpError(
                    400, f"unknown metrics format {fmt!r} (json|prom)"
                )
            return 200, self.metrics.snapshot(), {}
        if path == "/v1/jobs":
            if method == "GET":
                return self._list_jobs(req)
            self._require(method, "POST")
            return self._submit(req)
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if not job_id or tail not in ("", "result"):
                raise HttpError(404, f"no such endpoint {req.path!r}")
            if tail == "result":
                self._require(method, "GET")
                return self._result(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            self._require(method, "GET", "DELETE")
            return self._job(job_id)
        raise HttpError(404, f"no such endpoint {req.path!r}")

    @staticmethod
    def _require(method: str, *allowed: str) -> None:
        if method not in allowed:
            raise HttpError(
                405, f"method {method} not allowed (use {'/'.join(allowed)})"
            )

    def _retry_after(self) -> int:
        """Adaptive backoff hint (queue depth × median job latency)."""
        try:
            return self.registry.retry_after_s()
        except Exception:  # noqa: BLE001 - a hint must never 500
            return RETRY_AFTER_S

    # -- handlers ------------------------------------------------------------
    def _healthz(self) -> Response:
        if self.is_draining():
            return (
                503,
                {"status": "draining"},
                {"Retry-After": str(self._retry_after())},
            )
        # degraded is still 200: the service answers, but some
        # robustness event (exhausted retries, quarantined file,
        # journal write failure, worker respawn, watchdog abort) needs
        # operator attention — the events are itemized in the payload
        payload = self.metrics.health()
        payload.update(self.metrics.identity())
        return 200, payload, {}

    def _list_jobs(self, req: HttpRequest) -> Response:
        state = req.query.get("state")
        jobs = self.registry.jobs(state=state)
        jobs.sort(key=lambda j: j.submitted)
        return (
            200,
            {"jobs": [j.to_dict() for j in jobs], "count": len(jobs)},
            {},
        )

    def _submit(self, req: HttpRequest) -> Response:
        if self.is_draining():
            wait = self._retry_after()
            return (
                503,
                {
                    "error": "server is draining",
                    "retry_after_s": wait,
                },
                {"Retry-After": str(wait)},
            )
        spec = JobSpec.from_dict(req.json())
        request_id = (
            req.headers.get("x-request-id") or f"req-{uuid.uuid4().hex[:12]}"
        )
        job, created = self.registry.submit(spec, request_id=request_id)
        payload = job.to_dict()
        payload["created"] = created
        # 201 for new work, 200 when answered by the content-hash dedup
        return (
            (201 if created else 200),
            payload,
            {"X-Request-Id": request_id},
        )

    def _job(self, job_id: str) -> Response:
        job = self.registry.get(job_id)
        payload = job.to_dict()
        progress = self.registry.progress(job)
        if progress is not None:
            payload["progress"] = progress
        return 200, payload, {}

    def _result(self, job_id: str) -> Response:
        job = self.registry.get(job_id)
        if job.state == COMPLETED:
            return (
                200,
                {"id": job.id, "state": job.state, "result": job.result},
                {},
            )
        if job.state in (QUEUED, RUNNING):
            wait = self._retry_after()
            return (
                202,
                {
                    "id": job.id,
                    "state": job.state,
                    "retry_after_s": wait,
                },
                {"Retry-After": str(wait)},
            )
        return (
            409,
            {"id": job.id, "state": job.state, "error": job.error},
            {},
        )

    def _cancel(self, job_id: str) -> Response:
        job, accepted = self.registry.cancel(job_id)
        if not accepted:
            return (
                409,
                {
                    "id": job.id,
                    "state": job.state,
                    "error": f"job already {job.state}",
                },
                {},
            )
        return 200, job.to_dict(), {}
