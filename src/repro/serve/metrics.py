"""Service telemetry: one snapshot across every shared resource.

``GET /v1/metrics`` is the observable proof of the service's central
claim — that all jobs share one session's process-wide resources.  A
repeated identical search shows up here as ``jobs.counters.deduped``
(never re-executed at all); a resubmitted-but-rerun search shows up as
``search.runs`` staying flat while ``estimator_memo.hits`` climbs; a
threshold-varied sweep of submissions shows the config-kernel cache
absorbing the compile cost.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.serve.jobs import JobRegistry


class ServiceMetrics:
    """Aggregates registry, session, cache, and HTTP counters."""

    def __init__(
        self, registry: JobRegistry, started: Optional[float] = None
    ) -> None:
        self.registry = registry
        self.started = time.time() if started is None else started
        self._lock = threading.Lock()
        self._http: Dict[str, int] = {
            "requests": 0,
            "responses_2xx": 0,
            "responses_4xx": 0,
            "responses_5xx": 0,
        }

    def observe_response(self, status: int) -> None:
        with self._lock:
            self._http["requests"] += 1
            bucket = f"responses_{status // 100}xx"
            if bucket in self._http:
                self._http[bucket] += 1

    def identity(self) -> Dict[str, object]:
        """The static who-am-I block shared by healthz and metrics."""
        from repro.search.store import library_version

        session = self.registry.session
        return {
            "version": library_version(),
            "session_id": session.id,
            "config_fingerprint": session.config.fingerprint(),
            "uptime_s": round(time.time() - self.started, 3),
        }

    def snapshot(self) -> Dict[str, object]:
        session = self.registry.session
        out: Dict[str, object] = {"service": self.identity()}
        out["jobs"] = self.registry.stats()
        with self._lock:
            out["http"] = dict(self._http)
        # session.stats() already unifies estimator memo, config
        # kernel cache, and sweep cache counters (PR 5)
        out["session"] = session.stats()
        store = session.store
        if store is not None:
            runs = store.list_runs()
            out["store"] = {
                "root": str(store.root),
                "runs": len(runs),
                "completed": sum(
                    1 for m in runs if m.get("completed")
                ),
                "in_flight": len(store.in_flight_runs()),
            }
        return out
