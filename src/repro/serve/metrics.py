"""Service telemetry: one snapshot across every shared resource.

``GET /v1/metrics`` is the observable proof of the service's central
claim — that all jobs share one session's process-wide resources.  A
repeated identical search shows up here as ``jobs.counters.deduped``
(never re-executed at all); a resubmitted-but-rerun search shows up as
``search.runs`` staying flat while ``estimator_memo.hits`` climbs; a
threshold-varied sweep of submissions shows the config-kernel cache
absorbing the compile cost.

Since the observability layer landed, the counters here are **views
over the process-wide registry** (:data:`repro.obs.metrics.REGISTRY`):
every HTTP observation folds into ``repro_http_*`` instruments, and
``GET /v1/metrics?format=prom`` renders the whole registry in the
Prometheus text exposition format.  ``ServiceMetrics`` keeps exact
per-instance counts too (one server's snapshot must not include a
previous server's traffic in the same process — tests rely on that),
guarded by the instance lock.

Thread-safety: ``observe_response`` is called from the asyncio loop
thread while job-side counters mutate under worker threads; both the
instance dict updates (``self._lock``) and the registry increments
(registry lock) are lock-guarded, so concurrent observers can never
lose increments.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.serve.jobs import JobRegistry

_HTTP_REQUESTS = obs_metrics.REGISTRY.counter(
    "repro_http_requests_total", "HTTP requests received"
)
_HTTP_CLASSES = {
    2: obs_metrics.REGISTRY.counter(
        "repro_http_responses_2xx_total", "HTTP 2xx responses"
    ),
    4: obs_metrics.REGISTRY.counter(
        "repro_http_responses_4xx_total", "HTTP 4xx responses"
    ),
    5: obs_metrics.REGISTRY.counter(
        "repro_http_responses_5xx_total", "HTTP 5xx responses"
    ),
}
_HTTP_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_http_request_seconds", "HTTP request handling latency"
)

#: process-wide robustness counters surfaced in ``/v1/metrics`` and
#: watched by ``health()``; get-or-create, so ordering against the
#: subsystems that own them doesn't matter
ROBUSTNESS_COUNTERS = (
    "repro_faults_injected_total",
    "repro_retries_total",
    "repro_retry_exhausted_total",
    "repro_quarantined_total",
    "repro_worker_respawns_total",
    "repro_sweep_cache_read_failures_total",
    "repro_sweep_cache_write_failures_total",
    "repro_jobs_journal_failures_total",
    "repro_jobs_watchdog_aborts_total",
    "repro_jobs_watchdog_requeues_total",
)

#: process-wide distributed-execution counters (``repro.dist``):
#: lease claim traffic, fleet activity, and store merges.  Surfaced as
#: the ``dist`` section of ``/v1/metrics`` (and, like every registry
#: counter, in the Prometheus rendering).  Get-or-create, so a server
#: that never runs a fleet still reports zeros.
DIST_COUNTERS = (
    "repro_dist_claims_total",
    "repro_dist_claim_conflicts_total",
    "repro_dist_lease_steals_total",
    "repro_dist_lease_renewals_total",
    "repro_dist_leases_lost_total",
    "repro_dist_entries_completed_total",
    "repro_dist_workers_spawned_total",
    "repro_dist_fleet_runs_total",
    "repro_dist_merged_runs_total",
    "repro_dist_merge_skipped_total",
)

#: the subset whose growth flips health to ``degraded``: events the
#: service did NOT fully absorb.  Retries that succeeded and faults
#: that were injected-then-survived are normal operation; exhausted
#: retries, quarantined files, lost journal writes, worker respawns
#: and watchdog action all mean something real was lost or rebuilt.
DEGRADING_COUNTERS = (
    "repro_retry_exhausted_total",
    "repro_quarantined_total",
    "repro_worker_respawns_total",
    "repro_sweep_cache_read_failures_total",
    "repro_sweep_cache_write_failures_total",
    "repro_jobs_journal_failures_total",
    "repro_jobs_watchdog_aborts_total",
)


class ServiceMetrics:
    """Aggregates registry, session, cache, and HTTP counters.

    Instance counters are exact for this server's lifetime; every
    observation is also mirrored into the process-wide registry
    (``repro_http_*``)."""

    def __init__(
        self, registry: JobRegistry, started: Optional[float] = None
    ) -> None:
        self.registry = registry
        self.started = time.time() if started is None else started
        self._lock = threading.Lock()
        self._http: Dict[str, int] = {
            "requests": 0,
            "responses_2xx": 0,
            "responses_4xx": 0,
            "responses_5xx": 0,
        }
        # robustness counters are process-wide and may carry increments
        # from earlier servers/sessions in this process; health is
        # judged on growth since *this* server started
        self._robustness_baseline: Dict[str, int] = {
            name: obs_metrics.REGISTRY.counter(name).value
            for name in ROBUSTNESS_COUNTERS
        }

    def robustness(self) -> Dict[str, int]:
        """Robustness counter deltas since this server started."""
        return {
            name: obs_metrics.REGISTRY.counter(name).value
            - self._robustness_baseline[name]
            for name in ROBUSTNESS_COUNTERS
        }

    def health(self) -> Dict[str, object]:
        """The liveness verdict: ``ok`` or ``degraded`` (+ evidence).

        ``degraded`` means a robustness event this server could not
        fully absorb happened on its watch — an exhausted retry, a
        quarantined file, a journal write lost, a worker pool rebuilt,
        a watchdog abort.  Absorbed retries and injected-but-survived
        faults do not degrade health: surviving those is the design.
        """
        deltas = self.robustness()
        events = {
            name: deltas[name]
            for name in DEGRADING_COUNTERS
            if deltas[name] > 0
        }
        out: Dict[str, object] = {
            "status": "degraded" if events else "ok"
        }
        if events:
            out["degraded_events"] = events
        return out

    def observe_response(
        self, status: int, duration_s: Optional[float] = None
    ) -> None:
        """Count one completed HTTP exchange (thread-safe).

        ``duration_s``, when the server measured it, feeds the
        ``repro_http_request_seconds`` histogram."""
        with self._lock:
            self._http["requests"] += 1
            bucket = f"responses_{status // 100}xx"
            if bucket in self._http:
                self._http[bucket] += 1
        _HTTP_REQUESTS.inc()
        cls = _HTTP_CLASSES.get(status // 100)
        if cls is not None:
            cls.inc()
        if duration_s is not None:
            _HTTP_SECONDS.observe(duration_s)

    def identity(self) -> Dict[str, object]:
        """The static who-am-I block shared by healthz and metrics."""
        from repro.search.store import library_version

        session = self.registry.session
        return {
            "version": library_version(),
            "session_id": session.id,
            "config_fingerprint": session.config.fingerprint(),
            "uptime_s": round(time.time() - self.started, 3),
        }

    def snapshot(self) -> Dict[str, object]:
        """The JSON ``/v1/metrics`` payload (views over the registry
        plus service identity and store occupancy)."""
        session = self.registry.session
        out: Dict[str, object] = {"service": self.identity()}
        out["jobs"] = self.registry.stats()
        with self._lock:
            out["http"] = dict(self._http)
        out["robustness"] = {
            "health": self.health()["status"],
            "counters": self.robustness(),
        }
        out["dist"] = {
            name: obs_metrics.REGISTRY.counter(name).value
            for name in DIST_COUNTERS
        }
        # session.stats() already unifies estimator memo, config
        # kernel cache, and sweep cache counters (PR 5; registry views
        # since the observability layer)
        out["session"] = session.stats()
        store = session.store
        if store is not None:
            runs = store.list_runs()
            out["store"] = {
                "root": str(store.root),
                "runs": len(runs),
                "completed": sum(
                    1 for m in runs if m.get("completed")
                ),
                "in_flight": len(store.in_flight_runs()),
            }
        return out

    def render_prom(self) -> str:
        """Prometheus text exposition of the process-wide registry
        (the ``/v1/metrics?format=prom`` payload)."""
        return obs_metrics.render_prom()
