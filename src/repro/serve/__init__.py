"""Tuning-as-a-service: a long-lived job server over one Session.

``python -m repro serve --store runs/`` turns the library into a small
HTTP/JSON service: clients POST estimate/sweep/tune/search job specs
and poll for results, while every job executes on a bounded thread
pool over **one shared** :class:`repro.session.Session` — so the
estimator memo, sweep cache, config-kernel cache, and run store do for
a stream of requests exactly what they do for a single script, and
``GET /v1/metrics`` makes that sharing observable.

Stdlib only (asyncio + a tiny HTTP/1.1 layer in
:mod:`~repro.serve.http`); no web framework.

* :mod:`~repro.serve.jobs` — :class:`JobSpec` (frozen, validated,
  content-hash ids so identical submissions dedupe),
  :class:`JobRegistry` (bounded queue, budgets, deadlines, cooperative
  cancel), :class:`JobJournal` (atomic per-job records);
* :mod:`~repro.serve.app` — the route table, pure and
  transport-free;
* :mod:`~repro.serve.metrics` — the ``/v1/metrics`` snapshot;
* :mod:`~repro.serve.server` — :class:`ReproServer`: graceful drain
  on SIGTERM, and after a hard kill the next start requeues unfinished
  jobs from the journal and resumes searches bit-identically from the
  run store's checkpoints.
"""

from repro.serve.app import ServeApp
from repro.serve.http import HttpError, HttpRequest, read_request, render
from repro.serve.jobs import (
    Job,
    JobCancelled,
    JobInterrupted,
    JobJournal,
    JobRegistry,
    JobSpec,
    JobTimeout,
    QueueFullError,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.server import ReproServer, run_server

__all__ = [
    "HttpError",
    "HttpRequest",
    "Job",
    "JobCancelled",
    "JobInterrupted",
    "JobJournal",
    "JobRegistry",
    "JobSpec",
    "JobTimeout",
    "QueueFullError",
    "ReproServer",
    "ServeApp",
    "ServiceMetrics",
    "read_request",
    "render",
    "run_server",
]
