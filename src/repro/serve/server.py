"""The long-lived asyncio server: transport, signals, lifecycle.

Single-process, two-layer concurrency: the asyncio loop owns sockets
and request parsing (cheap, many connections), while job execution
runs on the registry's bounded thread pool over one shared
:class:`repro.session.Session`.  Route handling itself is synchronous
and fast — submissions only enqueue — so handlers run inline on the
loop via :meth:`ServeApp.handle`.

Lifecycle contract:

* **SIGTERM/SIGINT** → graceful drain: stop accepting submissions
  (503 + Retry-After), close the listener, wait up to
  ``drain_timeout_s`` for in-flight jobs, then exit.  Jobs still
  running at the deadline stay RUNNING in the journal — exactly what
  recovery requeues.
* **SIGKILL** (or power loss) → nothing graceful happened, and that
  is fine: job specs and states live in the journal (atomic writes),
  search evaluations live in the run store's checkpoints.  The next
  ``python -m repro serve`` on the same store requeues unfinished
  jobs and resumes searches bit-identically from their checkpointed
  prefixes.
"""

from __future__ import annotations

import asyncio
import signal
import time
from pathlib import Path
from typing import Optional

from repro import faults
from repro.serve.app import ServeApp
from repro.serve.http import HttpError, read_request, render
from repro.serve.jobs import JobJournal, JobRegistry
from repro.serve.metrics import ServiceMetrics
from repro.util.errors import ConfigError

#: journal subdirectory name inside the server state dir
_JOBS_DIR = "jobs"


class ReproServer:
    """Owns the listener, the registry, and the drain state machine."""

    def __init__(
        self,
        session,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_queue: int = 16,
        max_budget: Optional[int] = None,
        default_timeout_s: Optional[float] = None,
        state_dir: Optional[object] = None,
        resume: bool = True,
        drain_timeout_s: float = 30.0,
        watchdog_interval_s: float = 1.0,
    ) -> None:
        if session.store is None:
            raise ConfigError(
                "serving requires a durable session — construct the "
                "session with store= (the run store also anchors the "
                "job journal)"
            )
        self.session = session
        self.host = host
        self.port = int(port)
        self.drain_timeout_s = float(drain_timeout_s)
        #: deadline-sweep cadence; <= 0 disables the watchdog task
        self.watchdog_interval_s = float(watchdog_interval_s)
        if state_dir is None:
            # "_serve" is not run-id-shaped, so store pruning/listing
            # never mistakes it for a run directory
            state_dir = Path(session.store.root) / "_serve"
        self.state_dir = Path(state_dir)
        journal = JobJournal(self.state_dir / _JOBS_DIR)
        self.registry = JobRegistry(
            session,
            workers=workers,
            max_queue=max_queue,
            max_budget=max_budget,
            default_timeout_s=default_timeout_s,
            journal=journal,
        )
        self.recovered = self.registry.recover() if resume else 0
        self.metrics = ServiceMetrics(self.registry)
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self.app = ServeApp(
            self.registry, self.metrics, is_draining=lambda: self._draining
        )

    # -- transport -----------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            # connection-accept fault site: an injected OSError here
            # models accept/handshake-level failures (fd exhaustion,
            # resets) — the connection drops, the server keeps serving
            faults.check("http.accept")
            while True:
                try:
                    req = await read_request(reader)
                except HttpError as exc:
                    self.metrics.observe_response(exc.status)
                    writer.write(
                        render(
                            exc.status,
                            {"error": exc.message},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if req is None:
                    return
                t0 = time.perf_counter()
                status, payload, headers = self.app.handle(req)
                self.metrics.observe_response(
                    status, duration_s=time.perf_counter() - t0
                )
                keep = req.keep_alive and not self._draining
                writer.write(
                    render(status, payload, keep_alive=keep, headers=headers)
                )
                await writer.drain()
                if not keep:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to clean up
        except OSError:
            pass  # accept-level failure (incl. injected): drop the conn
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolves ``self.port`` when given 0)."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        # parseable by scripts/tests that spawn the server and need
        # the resolved port (flush: the reader blocks on this line)
        print(
            f"repro-serve: listening on http://{self.host}:{self.port} "
            f"(workers={self.registry.workers}, "
            f"recovered={self.recovered})",
            flush=True,
        )

    def request_shutdown(self) -> None:
        """Flip into draining mode (idempotent, signal-safe)."""
        self._draining = True
        if self._stopped is not None:
            self._stopped.set()

    async def serve_until_shutdown(self) -> None:
        """Serve until a signal (or :meth:`request_shutdown`), then
        drain: refuse new submissions, finish in-flight jobs, exit."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        loop = asyncio.get_running_loop()
        registered = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                registered.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal support
        watchdog = (
            asyncio.create_task(self._watchdog())
            if self.watchdog_interval_s > 0
            else None
        )
        try:
            await self._stopped.wait()
        finally:
            if watchdog is not None:
                watchdog.cancel()
            for signum in registered:
                loop.remove_signal_handler(signum)
            await self._shutdown()

    async def _watchdog(self) -> None:
        """Periodically fail (and once-requeue) jobs wedged past their
        deadline — the backstop for work stuck *inside* a batch, where
        the cooperative ``on_batch`` deadline check never runs."""
        while True:
            await asyncio.sleep(self.watchdog_interval_s)
            # off-loop: the sweep takes the registry lock, which worker
            # threads also hold while finishing jobs
            await asyncio.to_thread(self.registry.watchdog_sweep)

    async def _shutdown(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await asyncio.to_thread(
            self.registry.drain, self.drain_timeout_s
        )
        self.registry.close()
        print(
            "repro-serve: drained"
            if drained
            else "repro-serve: drain timed out; unfinished jobs will "
            "resume on restart",
            flush=True,
        )


def run_server(session, **kwargs) -> ReproServer:
    """Blocking entry point used by ``python -m repro serve``."""
    server = ReproServer(session, **kwargs)

    async def _main() -> None:
        await server.start()
        await server.serve_until_shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass  # drain already handled by the SIGINT handler where possible
    return server
