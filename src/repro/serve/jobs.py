"""Job model of the tuning service: specs, lifecycle, journal, registry.

A **job** is one unit of client-requested work — an estimate, sweep,
tune, static analysis, or search over a named app scenario.  The design leans on the
properties the rest of the library already guarantees:

* job ids are **content hashes** of the (validated, normalized) job
  spec, so identical submissions dedupe into one job instead of
  recomputing — the same discipline as the estimator memo, the sweep
  cache, and the run store;
* search jobs resolve their **content-addressed run id** at submission
  time (:meth:`repro.session.Session.search_run_id`), so clients can
  poll live progress from the run store's checkpointed manifests while
  the job executes, and a resubmitted search rides the store's
  bit-identical warm-resume path;
* every state transition lands in a durable :class:`JobJournal`
  (atomic JSON files), so a server killed mid-job restarts, requeues
  the unfinished jobs, and — for searches — resumes them from the run
  store's checkpoints with fronts bit-identical to an uninterrupted
  run.

Robustness knobs live in the :class:`JobRegistry`: a bounded queue
(submitting past it raises :class:`QueueFullError` → HTTP 429), a
server-wide evaluation-budget cap, and per-job wall-clock deadlines
enforced cooperatively through the search driver's ``on_batch`` hook
(an aborted search keeps its checkpointed prefix and stays resumable).
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util import atomio
from repro.util.retry import DEFAULT_IO_POLICY
from repro.util.errors import ConfigError, ReproError, UnknownNameError

_JOB_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_job_duration_seconds", "job execution latency (started→finished)"
)

#: job kinds, mirroring the Session workflow methods
KINDS = ("estimate", "sweep", "tune", "analyze", "search")

#: lifecycle states
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
#: terminal states — jobs here never transition again
FINISHED = (COMPLETED, FAILED, CANCELLED)


class QueueFullError(ReproError, RuntimeError):
    """The pending-job queue is at capacity (HTTP 429 backpressure)."""


class JobInterrupted(ReproError, RuntimeError):
    """A running job was interrupted cooperatively."""


class JobCancelled(JobInterrupted):
    """The client cancelled the job."""


class JobTimeout(JobInterrupted):
    """The job exceeded its wall-clock deadline."""


@dataclass(frozen=True)
class JobSpec:
    """A frozen, validated job request — the unit of content identity.

    Follows the :class:`~repro.session.config.SessionConfig`
    discipline: plain JSON-expressible fields, validation on
    construction, a stable content hash (:attr:`job_id`).  Two
    requests that normalize to the same spec are the *same job*.
    """

    #: one of :data:`KINDS`
    kind: str
    #: app scenario name (``"blackscholes"``, ``"kmeans"``, ...)
    kernel: str
    #: error threshold (tune/search; ``None``: scenario default)
    threshold: Optional[float] = None
    #: evaluation budget (search; ``None``: scenario default)
    budget: Optional[int] = None
    #: strategy line-up (search; ``None``: session default)
    strategies: Optional[Tuple[str, ...]] = None
    #: RNG seed (search)
    seed: int = 0
    #: validation point index (estimate / point-mode tune)
    point: int = 0
    #: distribution-robust tuning over the scenario sweep (tune)
    robust: bool = False
    #: sweep/robust-tune aggregation name (``None``: worst case)
    aggregate: Optional[str] = None
    #: per-job wall-clock deadline in seconds (``None``: server default)
    timeout_s: Optional[float] = None
    #: fan a search out into N seed-varied shard runs executed by the
    #: distributed worker fleet (search; ``None``: no fan-out)
    shards: Optional[int] = None
    #: fleet worker processes for a sharded search (search;
    #: ``None`` with ``shards`` set: 2)
    fleet_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"job kind must be one of {list(KINDS)}, "
                f"got {self.kind!r}"
            )
        if not isinstance(self.kernel, str) or not self.kernel:
            raise ConfigError(
                f"kernel must be an app scenario name, got {self.kernel!r}"
            )
        for name, kinds in (
            ("threshold", ("tune", "analyze", "search")),
            ("budget", ("search",)),
            ("strategies", ("search",)),
            ("aggregate", ("sweep", "tune")),
            ("shards", ("search",)),
            ("fleet_workers", ("search",)),
        ):
            if getattr(self, name) is not None and self.kind not in kinds:
                # silently dropping a knob would run a different job
                # than the client asked for
                raise ConfigError(
                    f"{name}= applies to {'/'.join(kinds)} jobs, "
                    f"not {self.kind!r}"
                )
        if self.robust and self.kind != "tune":
            raise ConfigError("robust= applies to tune jobs only")
        if self.threshold is not None:
            object.__setattr__(self, "threshold", float(self.threshold))
            if not self.threshold > 0:
                raise ConfigError(
                    f"threshold must be > 0, got {self.threshold!r}"
                )
        if self.budget is not None:
            try:
                object.__setattr__(self, "budget", int(self.budget))
            except (TypeError, ValueError):
                raise ConfigError(
                    f"budget must be an integer, got {self.budget!r}"
                ) from None
            if self.budget < 1:
                raise ConfigError(
                    f"budget must be >= 1, got {self.budget!r}"
                )
        if self.strategies is not None:
            if isinstance(self.strategies, str):
                raise ConfigError(
                    "strategies must be a sequence of names, not a "
                    f"bare string — got {self.strategies!r}"
                )
            object.__setattr__(
                self, "strategies", tuple(self.strategies)
            )
            bad = [s for s in self.strategies if not isinstance(s, str)]
            if bad:
                raise ConfigError(
                    f"strategies must be names (str), got {bad!r}"
                )
        for name in ("seed", "point"):
            value = getattr(self, name)
            try:
                object.__setattr__(self, name, int(value))
            except (TypeError, ValueError):
                raise ConfigError(
                    f"{name} must be an integer, got {value!r}"
                ) from None
        if self.point < 0:
            raise ConfigError(f"point must be >= 0, got {self.point!r}")
        object.__setattr__(self, "robust", bool(self.robust))
        if self.aggregate is not None and not isinstance(
            self.aggregate, str
        ):
            raise ConfigError(
                f"aggregate must be a name, got {self.aggregate!r}"
            )
        if self.timeout_s is not None:
            object.__setattr__(self, "timeout_s", float(self.timeout_s))
            if not self.timeout_s > 0:
                raise ConfigError(
                    f"timeout_s must be > 0, got {self.timeout_s!r}"
                )
        for name in ("shards", "fleet_workers"):
            value = getattr(self, name)
            if value is None:
                continue
            try:
                object.__setattr__(self, name, int(value))
            except (TypeError, ValueError):
                raise ConfigError(
                    f"{name} must be an integer, got {value!r}"
                ) from None
            if getattr(self, name) < 1:
                raise ConfigError(
                    f"{name} must be >= 1, got {value!r}"
                )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The full normalized field set (JSON-expressible)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, raw: object) -> "JobSpec":
        """Build a spec from a wire payload.

        :raises ConfigError: non-mapping payloads, unknown keys, or
            invalid values (HTTP 400 at the API surface).
        """
        if not isinstance(raw, dict):
            raise ConfigError(
                f"job spec must be a JSON object, got "
                f"{type(raw).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ConfigError(
                f"job spec: unknown keys {unknown} "
                f"(known: {sorted(known)})"
            )
        data = dict(raw)
        if isinstance(data.get("strategies"), list):
            data["strategies"] = tuple(data["strategies"])
        return cls(**data)  # type: ignore[arg-type]

    @property
    def job_id(self) -> str:
        """Content-addressed job id.

        Explicit defaults and omitted fields normalize identically, so
        ``{"kind": "search", "kernel": "kmeans"}`` and the same spec
        with ``"seed": 0`` spelled out are one job.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return f"job-{digest[:16]}"


@dataclass
class Job:
    """One job's live state (registry-internal; the wire view is
    :meth:`to_dict`)."""

    spec: JobSpec
    id: str
    state: str = QUEUED
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    #: kind-specific result payload (set on completion)
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    #: content-addressed search run id (resolved at submission)
    run_id: Optional[str] = None
    #: requeued by restart-recovery rather than a client
    recovered: bool = False
    #: HTTP request id of the submitting request (trace linkage: the
    #: job's root span carries it, so a trace can be joined back to
    #: the originating client call)
    request_id: Optional[str] = None
    #: cooperative cancellation flag, checked between computed batches
    cancel_event: threading.Event = field(default_factory=threading.Event)
    future: Optional[Future] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "id": self.id,
            "kind": self.spec.kind,
            "kernel": self.spec.kernel,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "run_id": self.run_id,
            "recovered": self.recovered,
            "request_id": self.request_id,
            "cancel_requested": self.cancel_event.is_set(),
        }
        if self.started is not None and self.finished is not None:
            out["duration_s"] = self.finished - self.started
        return out


class JobJournal:
    """Durable job records: one atomic JSON file per job id.

    The journal is what survives a hard kill: it holds each job's spec
    and last observed state (plus the result payload once finished), so
    a restarted registry can requeue unfinished work and keep answering
    for jobs that completed in a previous life.  Records are written
    through :mod:`repro.util.atomio` — atomic rename, checksummed
    frame, transient-``OSError`` retries — and corrupt records found on
    :meth:`load` are quarantined, never silently trusted or deleted.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_of(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def record(self, job: Job) -> None:
        payload = job.to_dict()
        payload["result"] = job.result
        data = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        atomio.atomic_write(
            self.path_of(job.id),
            data,
            checksum=True,
            site="journal.append",
            retry=DEFAULT_IO_POLICY,
        )

    def load(self) -> List[Dict[str, object]]:
        """Every readable record, oldest submission first.

        Records that fail their checksum or don't parse are moved to
        ``_quarantine/`` and skipped — a journal that lost a record
        degrades to not knowing about that job, never to a server that
        refuses to start (and never to one that deletes the evidence).
        Unframed records from pre-checksum journals still load."""
        out: List[Dict[str, object]] = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                blob = atomio.read_bytes(
                    path, checked=True, site="journal.read"
                )
                rec = json.loads(blob.decode("utf-8"))
            except (
                atomio.CorruptPayloadError,
                UnicodeDecodeError,
                ValueError,
            ):
                atomio.quarantine(path, "corrupt journal record")
                continue
            except OSError:
                continue  # unreadable, but not provably corrupt
            if isinstance(rec, dict) and isinstance(rec.get("spec"), dict):
                out.append(rec)
        out.sort(key=lambda r: r.get("submitted") or 0.0)
        return out

    def remove(self, job_id: str) -> None:
        try:
            self.path_of(job_id).unlink()
        except OSError:
            pass


class JobRegistry:
    """Owns job lifecycle over one shared :class:`repro.session.Session`.

    Jobs execute on a bounded thread pool; the session's process-wide
    resources (estimator memo, sweep cache, config-kernel cache, run
    store) are shared across all workers — that sharing is the whole
    service story, and it is safe because the memos/counters are
    lock-guarded process-wide.

    :param session: the shared session (must have a run store for
        search jobs to be durable/resumable).
    :param workers: concurrent job executions.
    :param max_queue: pending (queued) jobs accepted before
        :meth:`submit` raises :class:`QueueFullError`.
    :param max_budget: server-wide cap on a search job's effective
        evaluation budget (``None``: uncapped).
    :param default_timeout_s: wall-clock deadline applied to jobs that
        don't carry their own ``timeout_s`` (``None``: no deadline).
    :param journal: durable job journal (``None``: in-memory only —
        restart-recovery disabled).
    """

    def __init__(
        self,
        session,
        *,
        workers: int = 2,
        max_queue: int = 16,
        max_budget: Optional[int] = None,
        default_timeout_s: Optional[float] = None,
        journal: Optional[JobJournal] = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers!r}")
        if max_queue < 0:
            raise ConfigError(
                f"max_queue must be >= 0, got {max_queue!r}"
            )
        if max_budget is not None and max_budget < 1:
            raise ConfigError(
                f"max_budget must be >= 1, got {max_budget!r}"
            )
        self.session = session
        self.workers = int(workers)
        self.max_queue = int(max_queue)
        self.max_budget = max_budget
        self.default_timeout_s = default_timeout_s
        self.journal = journal
        self._jobs: "Dict[str, Job]" = {}
        self._deadlines: Dict[str, float] = {}
        self._lock = threading.RLock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._closed = False
        #: test seam: called with the job right after it turns RUNNING
        self._pre_run_hook = None
        #: job ids the watchdog already requeued once (one second
        #: chance per id — a job that hangs twice stays FAILED)
        self._watchdog_requeued: Set[str] = set()
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "deduped": 0,
            "rejected": 0,
            "recovered": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "timeouts": 0,
            "journal_failures": 0,
            "watchdog_aborts": 0,
            "watchdog_requeues": 0,
        }

    def _count(self, key: str, n: int = 1) -> None:
        """Bump one lifecycle counter, instance + process-wide.

        The instance dict is exact for this registry (``stats()``);
        the mirrored ``repro_jobs_<key>_total`` registry counter spans
        every registry in the process.  Both are lock-guarded, so
        increments from the asyncio loop and worker threads never
        race."""
        with self._lock:
            self.counters[key] += n
        obs_metrics.REGISTRY.counter(
            f"repro_jobs_{key}_total", f"jobs {key}"
        ).inc(n)

    def _journal_record(self, job: Job) -> None:
        """Record a transition, degrading on journal failure.

        A journal write that still fails after its retries costs
        durability for that one transition (a restart may re-run the
        job — safe: job results are deterministic and stores are
        content-addressed), not availability: the job proceeds, the
        failure is counted, and ``/v1/healthz`` turns ``degraded``."""
        if self.journal is None:
            return
        try:
            self.journal.record(job)
        except OSError:
            self._count("journal_failures")

    # -- submission ----------------------------------------------------------
    def _scenario(self, spec: JobSpec):
        from repro.search.orchestrator import app_scenarios

        scenarios = app_scenarios()
        if spec.kernel not in scenarios:
            raise UnknownNameError(
                f"unknown app scenario {spec.kernel!r} "
                f"(available: {sorted(scenarios)})"
            )
        return scenarios[spec.kernel].search_scenario()

    def _validate(self, spec: JobSpec) -> None:
        """Submission-time validation: surface bad requests as HTTP 400
        instead of failed jobs."""
        scen = self._scenario(spec)
        if spec.kind in ("estimate",) or (
            spec.kind == "tune" and not spec.robust
        ):
            if spec.point >= len(scen.points):
                raise ConfigError(
                    f"point {spec.point} out of range (scenario "
                    f"{spec.kernel!r} has {len(scen.points)} "
                    f"validation points)"
                )
        if spec.kind == "sweep" or (spec.kind == "tune" and spec.robust):
            if scen.samples is None:
                raise ConfigError(
                    f"scenario {spec.kernel!r} has no input sweep"
                )
        if spec.kind == "sweep" or spec.kind == "tune":
            if spec.aggregate is not None:
                from repro.sweep.aggregate import resolve_aggregator

                resolve_aggregator(spec.aggregate)
        if spec.kind == "search":
            # a sharded search spends ``budget`` per shard — cap the
            # aggregate, not the per-shard slice
            effective = spec.budget if spec.budget else scen.budget
            effective *= spec.shards or 1
            if self.max_budget is not None and effective > self.max_budget:
                raise ConfigError(
                    f"budget {effective} exceeds the server cap "
                    f"{self.max_budget}"
                )
            if (
                spec.shards or spec.fleet_workers
            ) and self.session.store is None:
                raise ConfigError(
                    "sharded search requires the server run store"
                )

    def _search_overrides(self, spec: JobSpec) -> Dict[str, object]:
        overrides: Dict[str, object] = {"seed": spec.seed}
        if spec.threshold is not None:
            overrides["threshold"] = spec.threshold
        if spec.budget is not None:
            overrides["budget"] = spec.budget
        if spec.strategies is not None:
            overrides["strategies"] = spec.strategies
        return overrides

    def submit(
        self,
        spec: JobSpec,
        *,
        force: bool = False,
        request_id: Optional[str] = None,
    ) -> Tuple[Job, bool]:
        """Submit (or dedupe) one job; returns ``(job, created)``.

        Identical specs dedupe onto the existing job in any
        non-terminal-failure state — queued, running, or completed —
        so repeat traffic is answered from one execution.  A spec
        whose previous job failed or was cancelled is requeued under
        the same id.

        ``request_id`` (the HTTP ``X-Request-Id`` of the submitting
        call) is stamped on newly created jobs so their ``serve.job``
        trace span can be joined back to the originating request.

        :raises QueueFullError: the pending queue is at capacity
            (skipped with ``force=True``, used by restart-recovery).
        :raises ConfigError: invalid spec values for the target
            scenario, or a budget above the server cap.
        :raises UnknownNameError: unknown scenario name.
        """
        with self._lock:
            if self._closed:
                raise QueueFullError("registry is shut down")
            existing = self._jobs.get(spec.job_id)
            if existing is not None and existing.state not in (
                FAILED,
                CANCELLED,
            ):
                self._count("deduped")
                return existing, False
            if not force and self.queue_depth() >= self.max_queue:
                self._count("rejected")
                raise QueueFullError(
                    f"job queue is full ({self.max_queue} pending)"
                )
            self._validate(spec)
            job = Job(spec=spec, id=spec.job_id, request_id=request_id)
            if spec.kind == "search":
                # resolved through the same scenario/default pipeline
                # the execution uses, so the id always matches the run
                job.run_id = self.session.search_run_id(
                    spec.kernel, **self._search_overrides(spec)
                )
            self._jobs[job.id] = job
            self._count("submitted")
            self._journal_record(job)
            job.future = self._executor.submit(self._run, job)
            return job, True

    # -- lookup --------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownNameError(f"unknown job {job_id!r}")
        return job

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        with self._lock:
            out = list(self._jobs.values())
        if state is not None:
            out = [j for j in out if j.state == state]
        return out

    def queue_depth(self) -> int:
        with self._lock:
            return sum(
                1 for j in self._jobs.values() if j.state == QUEUED
            )

    def retry_after_s(self) -> int:
        """Adaptive ``Retry-After`` hint from live load.

        Estimates when a slot frees up: queue position over worker
        count, scaled by the median observed job duration (2 s before
        any job has finished).  Clamped to ``[1, 60]`` so a burst of
        slow jobs never tells clients to go away for hours."""
        snap = _JOB_SECONDS.snapshot()
        median = snap["p50"] if snap["count"] else 2.0
        waves = (self.queue_depth() + 1) / max(1, self.workers)
        return int(min(60, max(1, math.ceil(waves * median))))

    def progress(self, job: Job) -> Optional[Dict[str, object]]:
        """Live search progress from the run store's checkpoints."""
        store = getattr(self.session, "store", None)
        if job.run_id is None or store is None:
            return None
        return store.run_progress(job.run_id)

    # -- cancellation --------------------------------------------------------
    def cancel(self, job_id: str) -> Tuple[Job, bool]:
        """Request cancellation; returns ``(job, accepted)``.

        Queued jobs cancel immediately.  Running search jobs abort
        cooperatively at the next computed batch (their checkpointed
        prefix stays resumable); other running kinds finish their
        current call and only then observe the flag.
        """
        job = self.get(job_id)
        with self._lock:
            if job.state in FINISHED:
                return job, False
            job.cancel_event.set()
            if (
                job.state == QUEUED
                and job.future is not None
                and job.future.cancel()
            ):
                self._finish(job, CANCELLED, error="cancelled while queued")
            return job, True

    # -- execution -----------------------------------------------------------
    def _check_interrupt(self, job: Job, _n: int = 0) -> None:
        if job.cancel_event.is_set():
            raise JobCancelled(f"job {job.id} cancelled")
        deadline = self._deadlines.get(job.id)
        if deadline is not None and time.time() > deadline:
            raise JobTimeout(
                f"job {job.id} exceeded its wall-clock deadline"
            )

    def _finish(
        self,
        job: Job,
        state: str,
        *,
        result: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._lock:
            if job.state in FINISHED:
                return
            job.state = state
            job.finished = time.time()
            job.result = result
            job.error = error
            self._deadlines.pop(job.id, None)
            key = {
                COMPLETED: "completed",
                FAILED: "failed",
                CANCELLED: "cancelled",
            }[state]
            self._count(key)
            if job.started is not None and job.finished is not None:
                _JOB_SECONDS.observe(job.finished - job.started)
            self._journal_record(job)

    def _run(self, job: Job) -> None:
        with self._lock:
            if job.cancel_event.is_set() or job.state != QUEUED:
                self._finish(
                    job, CANCELLED, error="cancelled while queued"
                )
                return
            job.state = RUNNING
            job.started = time.time()
            timeout = (
                job.spec.timeout_s
                if job.spec.timeout_s is not None
                else self.default_timeout_s
            )
            if timeout is not None:
                self._deadlines[job.id] = job.started + float(timeout)
            self._journal_record(job)
        hook = self._pre_run_hook
        if hook is not None:
            hook(job)
        try:
            self._check_interrupt(job)
            # per-job root span: links the worker-thread execution back
            # to the submitting HTTP request via request_id (the trace
            # analogue of the X-Request-Id response header)
            with obs_trace.span(
                "serve.job",
                job_id=job.id,
                kind=job.spec.kind,
                kernel=job.spec.kernel,
                request_id=job.request_id,
                recovered=job.recovered,
            ):
                result = self._execute(job)
        except JobCancelled:
            self._finish(job, CANCELLED, error="cancelled")
        except JobTimeout as exc:
            self._count("timeouts")
            self._finish(job, FAILED, error=str(exc))
        except Exception as exc:  # noqa: BLE001 - job isolation barrier
            self._finish(
                job, FAILED, error=f"{type(exc).__name__}: {exc}"
            )
        else:
            self._finish(job, COMPLETED, result=result)

    def _execute(self, job: Job) -> Dict[str, object]:
        """Dispatch one job onto the shared session (worker thread)."""
        import numpy as np

        from repro.sweep.aggregate import resolve_aggregator

        spec = job.spec
        scen = self._scenario(spec)
        sess = self.session
        base = {"kind": spec.kind, "kernel": spec.kernel}
        if spec.kind == "estimate":
            report = sess.estimate_at(scen.kernel, scen.points[spec.point])
            return {
                **base,
                "point": spec.point,
                "value": report.value,
                "total_error": report.total_error,
                "per_variable": dict(report.per_variable),
            }
        if spec.kind == "sweep":
            agg_name, agg = resolve_aggregator(spec.aggregate or "max")
            rep = sess.sweep(scen.kernel, scen.samples, fixed=scen.fixed)
            return {
                **base,
                "n": rep.n,
                "backend": rep.backend,
                "from_cache": rep.from_cache,
                "aggregate": agg_name,
                "total_error": float(agg(np.asarray(rep.total_error))),
                "per_variable": {
                    v: float(agg(np.asarray(a)))
                    for v, a in rep.per_variable.items()
                },
            }
        if spec.kind == "tune":
            threshold = (
                spec.threshold
                if spec.threshold is not None
                else scen.threshold
            )
            if spec.robust:
                result = sess.tune(
                    scen.kernel,
                    threshold,
                    samples=scen.samples,
                    fixed=scen.fixed,
                    aggregate=spec.aggregate or "max",
                )
                mode = f"robust [{spec.aggregate or 'max'}]"
            else:
                result = sess.tune(
                    scen.kernel,
                    threshold,
                    args=scen.points[spec.point],
                )
                mode = f"point {spec.point}"
            return {
                **base,
                "threshold": threshold,
                "mode": mode,
                "configuration": result.config.describe(),
                "demoted": list(result.demoted),
                "estimated_error": result.estimated_error,
                "ranking": [[v, e] for v, e in result.ranking],
            }
        if spec.kind == "analyze":
            # static analysis: no execution, no sweep — the report is
            # the result payload (schema of AnalysisReport.to_dict)
            threshold = (
                spec.threshold
                if spec.threshold is not None
                else scen.threshold
            )
            report = sess.analyze(spec.kernel, threshold=threshold)
            return {**base, **report.to_dict()}
        # search: durable, resumable, cancellable between batches —
        # resolved by scenario name through the same pipeline as the
        # submission-time run id
        if spec.shards or spec.fleet_workers:
            return {**base, **self._execute_fleet(job, spec)}
        result = sess.search(
            spec.kernel,
            resume=sess.store is not None,
            on_batch=lambda n: self._check_interrupt(job, n),
            **self._search_overrides(spec),
        )
        return {**base, **result.to_dict()}

    def _execute_fleet(self, job: Job, spec: JobSpec) -> Dict[str, object]:
        """Fan a search job out across the distributed worker fleet.

        Shard runs land in the server's own store, so a re-submitted
        job resumes from the shard checkpoints and the elected front is
        bit-identical to a serial execution of the same shards.
        """
        from repro.dist.fleet import run_fleet
        from repro.search.orchestrator import PlanEntry

        sess = self.session
        if sess.store is None:
            raise ConfigError("sharded search requires the server run store")
        entry = PlanEntry(
            scenario=spec.kernel, overrides=self._search_overrides(spec)
        )
        fleet = run_fleet(
            [entry],
            sess.store,
            workers=spec.fleet_workers or 2,
            shards=spec.shards or 1,
            session_config=sess.config,
            deadline_s=spec.timeout_s or self.default_timeout_s,
        )
        if not fleet.completed:
            done = sum(1 for e in fleet.entries if e.get("completed"))
            raise ReproError(
                f"fleet search left {len(fleet.entries) - done}"
                f"/{len(fleet.entries)} shard run(s) incomplete"
            )
        return fleet.to_dict()

    # -- watchdog ------------------------------------------------------------
    def watchdog_sweep(
        self, *, grace_s: float = 5.0, requeue: bool = True
    ) -> int:
        """Fail RUNNING jobs stuck past their deadline; returns the
        number aborted.

        The deadline is normally enforced cooperatively (the search
        driver's ``on_batch`` hook), but a job wedged *inside* one
        batch — a hung worker pool, a stuck filesystem — never reaches
        the next check.  The watchdog is the backstop: once a job is
        ``grace_s`` past its deadline it is marked FAILED (its worker
        thread is poisoned via the cancel event and its eventual
        result discarded by ``_finish``'s already-FINISHED guard).

        Aborted *search* jobs are requeued once per job id: their
        checkpointed prefix makes the re-run a warm resume, and even if
        the wedged thread later revives, both writers emit atomic
        whole-file checkpoints of prefixes of the same deterministic
        evaluation order — concurrent completion is benign.
        """
        now = time.time()
        aborted: List[Job] = []
        with self._lock:
            for job in self._jobs.values():
                if job.state != RUNNING:
                    continue
                deadline = self._deadlines.get(job.id)
                if deadline is None or now <= deadline + grace_s:
                    continue
                job.cancel_event.set()
                self._count("watchdog_aborts")
                self._finish(
                    job,
                    FAILED,
                    error=(
                        "watchdog: stuck past deadline by more than "
                        f"{grace_s:g}s (hung batch?)"
                    ),
                )
                aborted.append(job)
        for job in aborted:
            if (
                not requeue
                or job.spec.kind != "search"
                or job.id in self._watchdog_requeued
            ):
                continue
            self._watchdog_requeued.add(job.id)
            try:
                self.submit(job.spec, force=True)
            except ReproError:
                continue  # registry closing or scenario gone
            self._count("watchdog_requeues")
        return len(aborted)

    # -- restart recovery ----------------------------------------------------
    def recover(self) -> int:
        """Reload the journal: requeue unfinished jobs, rehydrate
        finished ones.  Returns the number of jobs requeued.

        Requeued search jobs run with ``resume=True`` against the
        shared run store, so a server killed mid-search continues from
        the checkpointed prefix — the resumed front is bit-identical
        to an uninterrupted run (the store's resume contract)."""
        if self.journal is None:
            return 0
        requeued = 0
        for rec in self.journal.load():
            try:
                spec = JobSpec.from_dict(rec["spec"])
            except (ConfigError, TypeError):
                continue
            state = rec.get("state")
            if state in (QUEUED, RUNNING):
                try:
                    job, created = self.submit(spec, force=True)
                except (ConfigError, UnknownNameError):
                    # e.g. a scenario that no longer exists
                    continue
                if created:
                    job.recovered = True
                    requeued += 1
                    with self._lock:
                        self._count("recovered")
            elif state in FINISHED:
                job = Job(
                    spec=spec,
                    id=str(rec.get("id") or spec.job_id),
                    state=str(state),
                    submitted=float(rec.get("submitted") or 0.0),
                    started=rec.get("started"),  # type: ignore[arg-type]
                    finished=rec.get("finished"),  # type: ignore[arg-type]
                    result=rec.get("result"),  # type: ignore[arg-type]
                    error=rec.get("error"),  # type: ignore[arg-type]
                    run_id=rec.get("run_id"),  # type: ignore[arg-type]
                    recovered=True,
                )
                with self._lock:
                    self._jobs.setdefault(job.id, job)
        return requeued

    # -- telemetry / shutdown ------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "counters": dict(self.counters),
                "states": states,
                "queue": {
                    "depth": sum(
                        1
                        for j in self._jobs.values()
                        if j.state == QUEUED
                    ),
                    "capacity": self.max_queue,
                    "workers": self.workers,
                },
            }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for in-flight jobs to finish; returns whether the
        registry went idle within ``timeout`` seconds.

        Jobs still queued or running when the deadline expires stay
        QUEUED/RUNNING in the journal, which is exactly what
        :meth:`recover` requeues on the next start."""
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while True:
            busy = [
                j
                for j in self.jobs()
                if j.state in (QUEUED, RUNNING)
            ]
            if not busy:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.05)

    def close(self) -> None:
        """Shut the worker pool down (pending futures cancelled)."""
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
