"""A deliberately small HTTP/1.1 layer over asyncio streams.

The service speaks plain HTTP/JSON so any client (``curl``, a CI
script, a notebook) can drive it, but the repo takes no web-framework
dependency — the protocol surface the job API needs is tiny: parse a
request line + headers + optional ``Content-Length`` body, answer with
a JSON payload, keep the connection alive when asked.  Anything
fancier (chunked bodies, TLS, HTTP/2) is out of scope on purpose.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Mapping, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.util.errors import ReproError

#: refuse request bodies larger than this (a job spec is ~200 bytes)
MAX_BODY_BYTES = 1 << 20
#: cap on the request line + headers block
MAX_HEADER_BYTES = 1 << 16

REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ReproError, RuntimeError):
    """A protocol-level problem that maps straight to a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class HttpRequest:
    """One parsed request: method, path, query, headers, raw body."""

    def __init__(
        self,
        method: str,
        target: str,
        headers: Mapping[str, str],
        body: bytes,
    ) -> None:
        self.method = method.upper()
        parts = urlsplit(target)
        self.path = unquote(parts.path) or "/"
        self.query: Dict[str, str] = dict(
            parse_qsl(parts.query, keep_blank_values=True)
        )
        self.headers = {k.lower(): v for k, v in headers.items()}
        self.body = body

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> object:
        """The body decoded as JSON (:class:`HttpError` 400 if not)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Read one request off the stream; ``None`` on clean EOF.

    :raises HttpError: malformed request line/headers (400), header
        block or body over the caps (413).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request headers too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request headers too large")
    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0].split(" ")
    if len(request_line) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = request_line
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(
                400, f"bad Content-Length {length_header!r}"
            ) from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        body = await reader.readexactly(length)
    return HttpRequest(method, target, headers, body)


class PlainText:
    """A non-JSON response payload: rendered verbatim as
    ``text/plain`` (the Prometheus exposition content type by
    default).  Route handlers return one instead of a JSON-expressible
    object when the client expects a text format."""

    def __init__(
        self,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        self.text = text
        self.content_type = content_type


def render(
    status: int,
    payload: object,
    *,
    keep_alive: bool = True,
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialize one response (JSON, or :class:`PlainText` verbatim),
    ready for ``writer.write``."""
    if isinstance(payload, PlainText):
        body = payload.text.encode("utf-8")
        content_type = payload.content_type
    else:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        content_type = "application/json"
    reason = REASONS.get(status, "Unknown")
    out = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        out.append(f"{name}: {value}")
    return ("\r\n".join(out) + "\r\n\r\n").encode("latin-1") + body
