"""Deterministic, seedable fault injection for every I/O boundary.

The failure paths this library promises — atomic checkpoints, cache
degradation to recompute, journal recovery, bounded worker respawn —
are only contracts if something exercises them on demand.  This
package is that something: a process-wide registry of **fault sites**
(``store.write``, ``cache.read``, ``journal.append``, ``worker.exec``,
``http.accept``, ...) that the I/O helpers probe with one call::

    from repro import faults

    spec = faults.check("store.write")   # None, or an action spec,
                                         # or raises InjectedFaultError

Sites fire according to a :class:`FaultPlan` — by 1-based call index
(``nth``) and/or a seeded per-call probability — so a chaos run is as
reproducible as the search it perturbs: same plan, same call sequence,
same faults.

Disabled mode is the default and follows the ``NULL_SPAN`` discipline
of :mod:`repro.obs.trace`: :func:`check` reads one module global and
returns ``None`` — no allocation, no lock, no counter — so production
hot paths pay nothing for being injectable (tracemalloc-asserted in
``tests/test_faults.py``).

Enable through :func:`enable` (a plan object), ``SessionConfig.
fault_plan`` / ``--faults`` (inline JSON or a file path), or the
``REPRO_FAULTS`` environment variable (read at import).  Forked search
workers inherit the active plan; ``worker.exec`` decisions are made
parent-side so per-site call counts stay globally deterministic.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    KINDS,
    KNOWN_SITES,
)
from repro.obs import metrics as obs_metrics

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "KINDS",
    "KNOWN_SITES",
    "ActiveFaults",
    "check",
    "enable",
    "enable_from_env",
    "disable",
    "is_enabled",
    "current",
    "stats",
]

_INJECTED = obs_metrics.REGISTRY.counter(
    "repro_faults_injected_total", "faults fired by the active plan"
)


class ActiveFaults:
    """Runtime state of one enabled plan: counters and RNG streams.

    Thread-safe: one lock guards the per-site call counters and
    per-spec fire counts (sites are probed from the asyncio loop,
    worker threads, and the search driver concurrently).  Forked
    processes inherit a *copy* — their counters diverge, which is why
    process-kill decisions are made in the parent.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}
        self._by_site: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        self._rngs: Dict[int, random.Random] = {}
        for i, spec in enumerate(plan.specs):
            self._by_site.setdefault(spec.site, []).append((i, spec))
            if spec.probability > 0.0:
                self._rngs[i] = random.Random(
                    f"{plan.seed}:{spec.site}:{i}"
                )

    def check(self, site: str) -> Optional[FaultSpec]:
        """Count one call at ``site`` and fire any due fault.

        Raise-kind faults (``oserror``/``enospc``) raise
        :class:`InjectedFaultError`; ``delay`` sleeps and returns
        ``None`` (transparent to the caller); action kinds (``torn``,
        ``worker-kill``) return the spec for the site to act on.
        """
        fired: Optional[FaultSpec] = None
        with self._lock:
            n = self._calls.get(site, 0) + 1
            self._calls[site] = n
            for i, spec in self._by_site.get(site, ()):
                if (
                    spec.max_fires is not None
                    and self._fired.get(i, 0) >= spec.max_fires
                ):
                    continue
                hit = n in spec.nth
                if not hit and spec.probability > 0.0:
                    hit = self._rngs[i].random() < spec.probability
                if hit:
                    self._fired[i] = self._fired.get(i, 0) + 1
                    fired = spec
                    break
        if fired is None:
            return None
        _INJECTED.inc()
        if fired.kind in ("oserror", "enospc"):
            raise InjectedFaultError(
                fired.effective_errno, site, fired.kind
            )
        if fired.kind == "delay":
            time.sleep(fired.delay_s)
            return None
        return fired  # torn / worker-kill: the site acts on the spec

    def stats(self) -> Dict[str, object]:
        """Call and firing counts, JSON-ready."""
        with self._lock:
            calls = dict(sorted(self._calls.items()))
            fired = {
                f"{spec.site}:{spec.kind}": self._fired.get(i, 0)
                for i, spec in enumerate(self.plan.specs)
            }
        return {
            "seed": self.plan.seed,
            "calls": calls,
            "fired": fired,
            "injected": sum(fired.values()),
        }


# -- module-level registry -----------------------------------------------------

_STATE_LOCK = threading.Lock()
_ACTIVE: Optional[ActiveFaults] = None


def check(site: str) -> Optional[FaultSpec]:
    """Probe one fault site (the call every wired boundary makes).

    Disabled (the default): reads one module global and returns
    ``None`` — the zero-overhead fast path.  Enabled: counts the call
    and fires any due fault (see :meth:`ActiveFaults.check`).
    """
    state = _ACTIVE
    if state is None:
        return None
    return state.check(site)


def enable(plan: FaultPlan) -> ActiveFaults:
    """Install ``plan`` process-wide (replacing any active plan).

    Counters restart from zero — enabling is the start of one
    deterministic chaos schedule.
    """
    global _ACTIVE
    with _STATE_LOCK:
        _ACTIVE = ActiveFaults(plan)
        return _ACTIVE


def disable() -> None:
    """Tear fault injection down (no-op when already off)."""
    global _ACTIVE
    with _STATE_LOCK:
        _ACTIVE = None


def is_enabled() -> bool:
    """Whether a fault plan is active."""
    return _ACTIVE is not None


def current() -> Optional[ActiveFaults]:
    """The active runtime state, or ``None``."""
    return _ACTIVE


def stats() -> Optional[Dict[str, object]]:
    """The active plan's call/firing counters, or ``None`` when off."""
    state = _ACTIVE
    return state.stats() if state is not None else None


def enable_from_env() -> Optional[ActiveFaults]:
    """Enable from ``REPRO_FAULTS`` (inline JSON or a file path).

    Called at import so any entry point — CLI, server, pytest, a
    forked worker re-importing in a spawn context — honors the
    variable.  A malformed plan raises :class:`ConfigError` eagerly: a
    chaos run that silently tested nothing would be worse than one
    that fails to start.
    """
    raw = os.environ.get("REPRO_FAULTS")
    if not raw:
        return None
    return enable(FaultPlan.load(raw))


enable_from_env()
