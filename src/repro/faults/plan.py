"""The declarative half of fault injection: specs and plans.

A :class:`FaultSpec` names one fault to inject — *where* (a site such
as ``store.write``), *what* (a kind from :data:`KINDS`), and *when*
(specific call indices and/or a seeded probability).  A
:class:`FaultPlan` bundles specs with one seed; it round-trips through
JSON so a plan can live in ``SessionConfig``, an environment variable,
or a file next to the chaos run it reproduces.

Everything here is pure data — the runtime (call counting, seeded
draws, the zero-overhead disabled path) lives in
:mod:`repro.faults.__init__`.
"""

from __future__ import annotations

import errno as _errno
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.util.errors import ConfigError, ReproError

#: fault kinds a spec may inject
#:
#: * ``oserror`` / ``enospc`` — raise an :class:`InjectedFaultError`
#:   (an ``OSError`` with ``EIO`` / ``ENOSPC``) at the site;
#: * ``torn`` — an *action* kind: the I/O helper truncates the payload
#:   mid-write and completes silently, simulating a post-crash torn
#:   page that only the read-side checksum can catch;
#: * ``delay`` — sleep ``delay_s`` at the site (stall, not failure);
#: * ``worker-kill`` — an *action* kind: the parallel evaluator hard-
#:   kills (``os._exit``) the worker that draws the poisoned block.
KINDS = ("oserror", "enospc", "torn", "delay", "worker-kill")

#: the sites wired through the stack (new sites need no registration —
#: this tuple is documentation and the README table's source of truth)
KNOWN_SITES = (
    "store.write",
    "store.read",
    "cache.write",
    "cache.read",
    "journal.append",
    "journal.read",
    "worker.exec",
    "http.accept",
    "lease.acquire",
    "lease.renew",
)

_DEFAULT_ERRNO = {
    "oserror": _errno.EIO,
    "enospc": _errno.ENOSPC,
}


class InjectedFaultError(ReproError, OSError):
    """An injected fault surfacing as an ``OSError``.

    Carries the real errno (``EIO``/``ENOSPC`` by default), so retry
    classification and caller ``except OSError`` paths treat it exactly
    like the organic failure it simulates.
    """

    def __init__(self, errno_code: int, site: str, kind: str) -> None:
        OSError.__init__(
            self,
            errno_code,
            f"injected {kind} fault at {site}",
        )
        self.site = site
        self.kind = kind


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: site + kind + trigger.

    Triggers combine: the spec fires on any call index in ``nth``
    (1-based, counted per site) *or* on a seeded coin flip with
    ``probability`` per call.  ``max_fires`` bounds total firings.
    """

    #: injection site name (``store.write``, ``worker.exec``, ...)
    site: str
    #: one of :data:`KINDS`
    kind: str
    #: 1-based call indices at this site that fire the fault
    nth: Tuple[int, ...] = ()
    #: per-call firing probability (seeded, deterministic per plan)
    probability: float = 0.0
    #: total firing cap (``None``: unbounded)
    max_fires: Optional[int] = None
    #: sleep duration for ``delay`` faults
    delay_s: float = 0.005
    #: errno raised by ``oserror``/``enospc`` (``None``: kind default)
    errno_code: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"fault kind must be one of {list(KINDS)}, "
                f"got {self.kind!r}"
            )
        if not isinstance(self.site, str) or not self.site:
            raise ConfigError(
                f"fault site must be a non-empty name, got {self.site!r}"
            )
        if isinstance(self.nth, int):
            object.__setattr__(self, "nth", (self.nth,))
        try:
            object.__setattr__(
                self, "nth", tuple(int(n) for n in self.nth)
            )
        except (TypeError, ValueError):
            raise ConfigError(
                f"nth must be call indices, got {self.nth!r}"
            ) from None
        if any(n < 1 for n in self.nth):
            raise ConfigError(
                f"nth call indices are 1-based, got {self.nth!r}"
            )
        try:
            object.__setattr__(
                self, "probability", float(self.probability)
            )
        except (TypeError, ValueError):
            raise ConfigError(
                f"probability must be a float, got {self.probability!r}"
            ) from None
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"probability must be in [0, 1], got {self.probability!r}"
            )
        if not self.nth and self.probability == 0.0:
            raise ConfigError(
                f"fault at {self.site!r} can never fire: give nth= "
                f"call indices and/or probability="
            )
        if self.max_fires is not None:
            object.__setattr__(self, "max_fires", int(self.max_fires))
            if self.max_fires < 1:
                raise ConfigError(
                    f"max_fires must be >= 1, got {self.max_fires!r}"
                )
        object.__setattr__(self, "delay_s", float(self.delay_s))
        if self.delay_s < 0:
            raise ConfigError(
                f"delay_s must be >= 0, got {self.delay_s!r}"
            )
        if self.errno_code is not None:
            object.__setattr__(self, "errno_code", int(self.errno_code))

    @property
    def effective_errno(self) -> int:
        """The errno an ``oserror``/``enospc`` firing raises."""
        if self.errno_code is not None:
            return self.errno_code
        return _DEFAULT_ERRNO.get(self.kind, _errno.EIO)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.nth:
            out["nth"] = list(self.nth)
        if self.probability:
            out["probability"] = self.probability
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        if self.kind == "delay":
            out["delay_s"] = self.delay_s
        if self.errno_code is not None:
            out["errno_code"] = self.errno_code
        return out

    @classmethod
    def from_dict(cls, raw: object) -> "FaultSpec":
        if not isinstance(raw, Mapping):
            raise ConfigError(
                f"fault spec must be a JSON object, got "
                f"{type(raw).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ConfigError(
                f"fault spec: unknown keys {unknown} "
                f"(known: {sorted(known)})"
            )
        missing = sorted({"site", "kind"} - set(raw))
        if missing:
            raise ConfigError(
                f"fault spec: missing required keys {missing}"
            )
        data = dict(raw)
        if isinstance(data.get("nth"), list):
            data["nth"] = tuple(data["nth"])
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs to inject under it.

    The seed drives every probabilistic trigger (one independent
    ``random.Random`` stream per spec, keyed ``{seed}:{site}:{index}``)
    — the same plan over the same call sequence always fires the same
    faults, which is what makes a chaos run a *reproducible* test.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(
                    f"plan specs must be FaultSpec, got "
                    f"{type(spec).__name__}"
                )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "faults": [s.to_dict() for s in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, raw: object) -> "FaultPlan":
        if not isinstance(raw, Mapping):
            raise ConfigError(
                f"fault plan must be a JSON object, got "
                f"{type(raw).__name__}"
            )
        unknown = sorted(set(raw) - {"seed", "faults"})
        if unknown:
            raise ConfigError(
                f"fault plan: unknown keys {unknown} "
                f"(known: ['faults', 'seed'])"
            )
        faults_raw = raw.get("faults", [])
        if not isinstance(faults_raw, list):
            raise ConfigError(
                f"fault plan 'faults' must be a list, got "
                f"{type(faults_raw).__name__}"
            )
        return cls(
            seed=raw.get("seed", 0),  # type: ignore[arg-type]
            specs=tuple(FaultSpec.from_dict(f) for f in faults_raw),
        )

    @classmethod
    def load(cls, source: Union[str, Path]) -> "FaultPlan":
        """Build a plan from inline JSON or a JSON file path.

        A string starting with ``{`` parses as inline JSON (the
        ``REPRO_FAULTS``/``--faults`` convenience); anything else is
        read as a file path.
        """
        text = str(source).strip()
        if not text.startswith("{"):
            try:
                text = Path(text).read_text()
            except OSError as exc:
                raise ConfigError(
                    f"cannot read fault plan file {source!r}: {exc}"
                ) from None
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise ConfigError(
                f"fault plan is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(raw)

    def sites(self) -> List[str]:
        """The distinct sites this plan touches, sorted."""
        return sorted({s.site for s in self.specs})
