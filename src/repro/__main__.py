"""``python -m repro`` — the unified session-backed CLI.

See :mod:`repro.cli` for the subcommands (estimate / sweep / tune /
search / plan / runs).
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
