"""The :class:`Session` facade: one object, the whole workflow.

Every entry-point family of the CHEF-FP reproduction — error
estimation, input sweeps, mixed-precision tuning, Pareto search,
multi-scenario plans, and run-store management — historically re-plumbed
the same resources (estimator memo, sweep cache, run store, worker
pool settings, default error/cost models) through per-call keyword
arguments.  A :class:`Session` owns those resources once::

    import repro

    sess = repro.Session(cache="~/.cache/repro-sweeps", store="runs/")
    est = sess.estimate(kernel)                     # shared estimator memo
    rep = sess.sweep(kernel, samples, fixed=fixed)  # shared sweep cache
    cfg = sess.tune(kernel, 1e-6, samples=samples)  # robust tuning
    res = sess.search("blackscholes", resume=True)  # durable search
    orch = sess.plan(all_apps=True); orch.run()     # multi-scenario plan
    sess.runs().prune(incomplete=True)              # run-store GC

Defaults come from a frozen, serializable :class:`SessionConfig`; every
result is stamped with session provenance (session id, config
fingerprint, method, per-session sequence number).  The legacy free
functions (``repro.estimate_error`` & co.) remain as deprecated thin
wrappers constructing a default session, bit-identical by contract.
"""

from __future__ import annotations

import threading
import uuid
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.core.api import (
    KernelLike,
    _memo_stats,
    cached_error_estimator,
    warm_start_estimator_memo,
)
from repro.core.models import ErrorModel
from repro.core.report import ErrorReport
from repro.interp.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.session.config import SessionConfig
from repro.session.runs import RunsView
from repro.sweep.batch import BatchReport
from repro.sweep.cache import SweepCache
from repro.sweep.engine import run_sweep
from repro.tuning.greedy import TuningResult, run_greedy_tune
from repro.tuning.robust import run_robust_tune
from repro.util.errors import ConfigError, UnknownNameError

if TYPE_CHECKING:  # pragma: no cover
    from repro.search.store import RunStore

#: "argument not supplied — fall back to the session default"
_UNSET = object()


def _pick(value: object, default: object) -> object:
    return default if value is _UNSET else value


class Session:
    """Shared-resource facade over estimate / sweep / tune / search.

    :param config: the frozen :class:`SessionConfig` defaults
        (``None``: all defaults).
    :param cache: sweep result cache — a :class:`SweepCache`, a
        directory, or ``None`` to use ``config.cache_dir`` (no cache
        when that is ``None`` too).
    :param store: persistent run store — a
        :class:`~repro.search.store.RunStore`, a directory, or ``None``
        to use ``config.store_dir``.
    :param model: default error model for **estimates and sweeps**
        (and the search's sweep-estimate model); ``None`` keeps each
        method's historical default.  Tuning is *not* affected: its
        contribution ranking stays on the ADAPT demotion model unless
        a model is passed to :meth:`tune` explicitly.
    :param cost_model: default performance model for search.
    """

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        *,
        cache: Union[None, str, Path, SweepCache] = None,
        store: Union[None, str, Path, "RunStore"] = None,
        model: Optional[ErrorModel] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        from repro.search.store import RunStore

        self.config = config if config is not None else SessionConfig()
        if not isinstance(self.config, SessionConfig):
            raise ConfigError(
                f"config must be a SessionConfig, "
                f"got {type(self.config).__name__}"
            )
        if self.config.fault_plan is not None:
            # chaos mode: activate the process-wide fault registry from
            # the config's plan (inline JSON or a file path); raises
            # ConfigError on a malformed plan, before any work runs
            from repro import faults

            faults.enable(faults.FaultPlan.load(self.config.fault_plan))
        if cache is None:
            cache = self.config.cache_dir
        self._cache: Optional[SweepCache] = (
            cache
            if isinstance(cache, SweepCache) or cache is None
            else SweepCache(directory=cache, fsync=self.config.fsync)
        )
        if store is None:
            store = self.config.store_dir
        self._store: Optional[RunStore] = (
            store
            if isinstance(store, RunStore) or store is None
            else RunStore(store, fsync=self.config.fsync)
        )
        self.model = model
        self.cost_model = cost_model
        #: unique id of this session instance (provenance)
        self.id = f"sess-{uuid.uuid4().hex[:12]}"
        self._seq = 0
        # one session is shared by every worker thread of a server
        # (repro.serve); the provenance sequence must not skip or
        # duplicate numbers under concurrent method calls
        self._seq_lock = threading.Lock()

    # -- resources -----------------------------------------------------------
    @property
    def cache(self) -> Optional[SweepCache]:
        """The shared sweep result cache (``None``: uncached)."""
        return self._cache

    @property
    def store(self):
        """The shared persistent run store (``None``: not durable)."""
        return self._store

    def _provenance(self, method: str) -> Dict[str, object]:
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        return {
            "session_id": self.id,
            "config_fingerprint": self.config.fingerprint(),
            "method": method,
            "seq": seq,
        }

    def __repr__(self) -> str:
        cache = self._cache.directory if self._cache else None
        store = self._store.root if self._store else None
        return (
            f"Session(id={self.id!r}, cache={str(cache) if cache else None!r}, "
            f"store={str(store) if store else None!r})"
        )

    # -- estimate ------------------------------------------------------------
    def estimate(
        self,
        k: KernelLike,
        model: Optional[ErrorModel] = None,
        track: Sequence[str] = (),
        opt_level: object = _UNSET,
        minimal_pushes: object = _UNSET,
    ):
        """A compiled error-estimating adjoint of ``k`` (Listing 1).

        Served from the shared estimator memo whenever the kernel/model
        pair is cacheable (tracked-sensitivity estimators and models
        closing over arbitrary callables are built fresh).  Returns an
        :class:`~repro.core.api.ErrorEstimator`.
        """
        return cached_error_estimator(
            k,
            model=model if model is not None else self.model,
            track=track,
            opt_level=_pick(opt_level, self.config.opt_level),
            minimal_pushes=_pick(
                minimal_pushes, self.config.minimal_pushes
            ),
        )

    def estimate_at(
        self,
        k: KernelLike,
        args: Sequence[object],
        model: Optional[ErrorModel] = None,
        track: Sequence[str] = (),
    ) -> ErrorReport:
        """Estimate at one input point: ``estimate(k).execute(*args)``."""
        return self.estimate(k, model=model, track=track).execute(*args)

    # -- sweep ---------------------------------------------------------------
    def sweep(
        self,
        k: KernelLike,
        samples: Mapping[str, Sequence[float]],
        fixed: Optional[Mapping[str, object]] = None,
        model: Optional[ErrorModel] = None,
        opt_level: object = _UNSET,
        minimal_pushes: object = _UNSET,
    ) -> BatchReport:
        """Estimate FP error over a batch of input points.

        Repeated sweeps (same kernel content, model, inputs) are served
        from the session's sweep cache; estimators come from the shared
        memo.  Returns a :class:`~repro.sweep.batch.BatchReport` with
        session provenance attached.
        """
        report = run_sweep(
            k,
            samples=samples,
            fixed=fixed,
            model=model if model is not None else self.model,
            opt_level=_pick(opt_level, self.config.opt_level),
            minimal_pushes=_pick(
                minimal_pushes, self.config.minimal_pushes
            ),
            cache=self._cache,
        )
        report.provenance = self._provenance("sweep")
        return report

    # -- tune ----------------------------------------------------------------
    def tune(
        self,
        k: KernelLike,
        threshold: float,
        *,
        args: Optional[Sequence[object]] = None,
        samples: Optional[Mapping[str, Sequence[float]]] = None,
        fixed: Optional[Mapping[str, object]] = None,
        robust: Optional[bool] = None,
        model: Optional[ErrorModel] = None,
        candidates: Optional[Sequence[str]] = None,
        demote_to: object = _UNSET,
        aggregate: object = _UNSET,
    ) -> TuningResult:
        """Greedy mixed-precision tuning under an error threshold.

        Two modes, selected by ``robust`` (default: inferred from the
        inputs given):

        * **point** (``args=``) — the paper's single-point greedy pass;
        * **robust** (``samples=``) — distribution-robust tuning: the
          per-variable demotion contributions are aggregated across the
          whole sweep (session default: worst case) before the same
          greedy core runs.

        Sweeps go through the session cache; estimators through the
        shared memo.  With ``config.analyze`` on, the static analysis
        supplies per-variable amplification bounds that refine the
        greedy ladder order (contribution ties demote the
        most-sensitive variable last).
        """
        if robust is None:
            if args is not None and samples is not None:
                raise ConfigError(
                    "both args= and samples= given — pass robust=True "
                    "(sweep-aggregated) or robust=False (point tuning "
                    "at args) to pick the mode explicitly"
                )
            robust = samples is not None
        sensitivity: Optional[Dict[str, float]] = None
        if self.config.analyze:
            from repro.analyze import analyze_kernel

            sensitivity = dict(
                analyze_kernel(
                    k,
                    points=[args] if args is not None else None,
                    samples=samples,
                    fixed=fixed,
                    threshold=threshold,
                    demote_to=_pick(demote_to, self.config.demote_to),
                ).amp
            )
        if robust:
            if samples is None:
                raise ConfigError(
                    "robust tuning requires samples= (an input sweep)"
                )
            result = run_robust_tune(
                k,
                samples=samples,
                threshold=threshold,
                fixed=fixed,
                # per-call model only: the session default model scopes
                # to estimates/sweeps; tuning contributions must stay
                # on the ADAPT demotion model unless explicitly changed
                model=model,
                candidates=candidates,
                demote_to=_pick(demote_to, self.config.demote_to),
                aggregate=_pick(aggregate, self.config.aggregate),
                cache=self._cache,
                opt_level=self.config.opt_level,
                minimal_pushes=self.config.minimal_pushes,
                sensitivity=sensitivity,
            )
        else:
            if args is None:
                raise ConfigError(
                    "point tuning requires args= (one representative "
                    "input tuple); pass samples= for robust tuning"
                )
            if samples is None and (
                fixed is not None or aggregate is not _UNSET
            ):
                # these knobs only exist in robust mode — ignoring
                # them would silently tune something else than asked.
                # (With samples= present, an explicit robust=False
                # deliberately discards the whole robust group.)
                raise ConfigError(
                    "fixed= and aggregate= apply to robust tuning "
                    "only; point tuning takes the full input tuple "
                    "via args="
                )
            result = run_greedy_tune(
                k,
                args,
                threshold,
                model=model,
                candidates=candidates,
                demote_to=_pick(demote_to, self.config.demote_to),
                opt_level=self.config.opt_level,
                minimal_pushes=self.config.minimal_pushes,
                sensitivity=sensitivity,
            )
        result.provenance = self._provenance("tune")
        return result

    # -- analyze -------------------------------------------------------------
    def _resolve_target(
        self, k, points, threshold, candidates, samples, fixed,
        budget, label
    ):
        """Resolve an app-scenario name or
        :class:`~repro.search.scenario.SearchScenario` target into its
        kernel plus the scenario-defaulted inputs (shared by
        :meth:`analyze` and the search family)."""
        from repro.search.scenario import SearchScenario

        if isinstance(k, str):
            from repro.search.orchestrator import app_scenarios

            scenarios = app_scenarios()
            if k not in scenarios:
                raise UnknownNameError(
                    f"unknown app scenario {k!r} "
                    f"(available: {sorted(scenarios)})"
                )
            k = scenarios[k].search_scenario()
        if isinstance(k, SearchScenario):
            scen = k
            if points is None:
                points = scen.points
            if threshold is None:
                threshold = scen.threshold
            if candidates is None:
                candidates = scen.candidates
            if samples is _UNSET:
                samples = scen.samples
            if fixed is _UNSET:
                fixed = scen.fixed
            if budget is _UNSET:
                budget = scen.budget
            if label is None:
                label = scen.name
            k = scen.kernel
        return k, points, threshold, candidates, samples, fixed, \
            budget, label

    def analyze(
        self,
        k,
        threshold: Optional[float] = None,
        *,
        points: Optional[Sequence[Sequence[object]]] = None,
        samples: object = _UNSET,
        fixed: object = _UNSET,
        domains: Optional[Mapping[str, Sequence[float]]] = None,
        demote_to: object = _UNSET,
    ):
        """Static precision analysis of a kernel (no execution).

        ``k`` is a kernel, an IR function, a
        :class:`~repro.search.scenario.SearchScenario`, or the name of
        an app scenario; scenario targets contribute their points,
        samples, fixed values, and threshold.  Returns an
        :class:`~repro.analyze.AnalysisReport` with session provenance
        — the same report :meth:`search` consults for candidate
        pruning when ``config.analyze`` is on.
        """
        from repro.analyze import analyze_kernel

        k, points, threshold, _, samples, fixed, _, _ = (
            self._resolve_target(
                k, points, threshold, None, samples, fixed, _UNSET,
                None,
            )
        )
        report = analyze_kernel(
            k,
            points=points,
            samples=None if samples is _UNSET else samples,
            fixed=None if fixed is _UNSET else fixed,
            domains=domains,
            threshold=threshold,
            demote_to=_pick(demote_to, self.config.demote_to),
        )
        report.provenance = self._provenance("analyze")
        return report

    # -- search --------------------------------------------------------------
    def _resolve_search(
        self,
        k,
        points,
        threshold,
        *,
        candidates,
        samples,
        fixed,
        demote_to,
        strategies,
        budget,
        workers,
        cache,
        aggregate,
        estimate_model,
        cost_model,
        approx,
        seed,
        error_metric,
        config_batch,
        store,
        label,
        checkpoint_every,
    ) -> Dict[str, object]:
        """Resolve scenario/app-name targets and session defaults into
        the full :func:`repro.search.api.run_search` keyword set —
        shared by :meth:`search` and :meth:`search_run_id` so the run
        a search executes is exactly the run the id predicts.

        With ``config.analyze`` on, the static analysis runs here:
        pinned / demotion-safe variables are pruned from the candidate
        space and the analysis conclusions join the run identity —
        both methods therefore agree on the pruned run's id."""
        k, points, threshold, candidates, samples, fixed, budget, \
            label = self._resolve_target(
                k, points, threshold, candidates, samples, fixed,
                budget, label,
            )
        if points is None or threshold is None:
            raise ConfigError(
                "search requires points= and threshold= (or a "
                "SearchScenario / app scenario name)"
            )
        analysis: Optional[Dict[str, object]] = None
        if self.config.analyze:
            from repro.analyze import analyze_kernel, prune_candidates

            report = analyze_kernel(
                k,
                points=points,
                samples=None if samples is _UNSET else samples,
                fixed=None if fixed is _UNSET else fixed,
                threshold=threshold,
                demote_to=_pick(demote_to, self.config.demote_to),
            )
            if candidates is not None:
                candidates, _ = prune_candidates(report, candidates)
            analysis = {
                "digest": report.digest(),
                "pruned": sorted(
                    set(report.pinned) | set(report.safe)
                ),
            }
        return dict(
            analysis=analysis,
            k=k,
            points=points,
            threshold=threshold,
            candidates=candidates,
            samples=None if samples is _UNSET else samples,
            fixed=None if fixed is _UNSET else fixed,
            demote_to=_pick(demote_to, self.config.demote_to),
            strategies=_pick(strategies, self.config.strategies),
            budget=_pick(budget, self.config.budget),
            workers=_pick(workers, self.config.workers),
            cache=_pick(cache, self._cache),
            aggregate=_pick(aggregate, self.config.aggregate),
            estimate_model=_pick(estimate_model, self.model),
            cost_model=_pick(cost_model, self.cost_model),
            approx=approx,
            seed=_pick(seed, self.config.seed),
            error_metric=_pick(error_metric, self.config.error_metric),
            config_batch=_pick(config_batch, self.config.config_batch),
            store=_pick(store, self._store),
            label=label,
            checkpoint_every=_pick(
                checkpoint_every, self.config.checkpoint_every
            ),
        )

    def search(
        self,
        k,
        points: Optional[Sequence[Sequence[object]]] = None,
        threshold: Optional[float] = None,
        *,
        candidates: Optional[Sequence[str]] = None,
        samples: object = _UNSET,
        fixed: object = _UNSET,
        demote_to: object = _UNSET,
        strategies: object = _UNSET,
        budget: object = _UNSET,
        workers: object = _UNSET,
        cache: object = _UNSET,
        aggregate: object = _UNSET,
        estimate_model: object = _UNSET,
        cost_model: object = _UNSET,
        approx: Optional[Set[str]] = None,
        seed: object = _UNSET,
        error_metric: object = _UNSET,
        config_batch: object = _UNSET,
        store: object = _UNSET,
        resume: bool = False,
        label: Optional[str] = None,
        checkpoint_every: object = _UNSET,
        on_batch=None,
    ):
        """Multi-objective precision search over (error, cycles).

        ``k`` is a kernel plus explicit ``points``/``threshold``, a
        ready-made :class:`~repro.search.scenario.SearchScenario`, or
        the name of an app scenario (``"blackscholes"``); unset knobs
        fall back to the session config, and the session's sweep cache
        and run store are used unless overridden.  Returns a
        :class:`~repro.search.api.SearchResult` with session
        provenance; with the session store, runs checkpoint durably and
        ``resume=True`` restores bit-identically.  ``on_batch`` is
        called with the computed-evaluation count after every computed
        batch (the job server's cancellation/deadline hook — see
        :func:`repro.search.api.run_search`).
        """
        from repro.search.api import run_search

        kwargs = self._resolve_search(
            k, points, threshold,
            candidates=candidates, samples=samples, fixed=fixed,
            demote_to=demote_to, strategies=strategies, budget=budget,
            workers=workers, cache=cache, aggregate=aggregate,
            estimate_model=estimate_model, cost_model=cost_model,
            approx=approx, seed=seed, error_metric=error_metric,
            config_batch=config_batch, store=store, label=label,
            checkpoint_every=checkpoint_every,
        )
        result = run_search(resume=resume, on_batch=on_batch, **kwargs)
        result.provenance = self._provenance("search")
        return result

    def search_run_id(
        self,
        k,
        points: Optional[Sequence[Sequence[object]]] = None,
        threshold: Optional[float] = None,
        *,
        candidates: Optional[Sequence[str]] = None,
        samples: object = _UNSET,
        fixed: object = _UNSET,
        demote_to: object = _UNSET,
        strategies: object = _UNSET,
        budget: object = _UNSET,
        aggregate: object = _UNSET,
        estimate_model: object = _UNSET,
        cost_model: object = _UNSET,
        approx: Optional[Set[str]] = None,
        seed: object = _UNSET,
        error_metric: object = _UNSET,
    ) -> str:
        """The content-addressed run id :meth:`search` would use for
        these arguments — resolved through the same scenario/default
        pipeline, without running anything.  Lets callers poll
        :meth:`~repro.search.store.RunStore.run_progress` for a search
        before and while it executes."""
        from repro.search.api import search_run_id as _api_run_id

        kwargs = self._resolve_search(
            k, points, threshold,
            candidates=candidates, samples=samples, fixed=fixed,
            demote_to=demote_to, strategies=strategies, budget=budget,
            workers=_UNSET, cache=_UNSET, aggregate=aggregate,
            estimate_model=estimate_model, cost_model=cost_model,
            approx=approx, seed=seed, error_metric=error_metric,
            config_batch=_UNSET, store=_UNSET, label=None,
            checkpoint_every=_UNSET,
        )
        # identity excludes bit-identical-by-contract and plumbing
        # knobs (workers, config_batch, cache, store, label, cadence)
        for knob in ("workers", "cache", "config_batch", "store",
                     "label", "checkpoint_every"):
            kwargs.pop(knob)
        return _api_run_id(**kwargs)

    # -- plan ----------------------------------------------------------------
    def plan(
        self,
        entries: Optional[Sequence[object]] = None,
        *,
        plan_file: Union[None, str, Path] = None,
        all_apps: bool = False,
        resume: bool = True,
        defaults: Optional[Mapping[str, object]] = None,
        store: object = _UNSET,
    ):
        """A durable multi-scenario search plan over the session store.

        ``entries`` may mix scenario names and
        :class:`~repro.search.orchestrator.PlanEntry`/dict entries;
        alternatively pass ``plan_file=`` (a JSON plan) or
        ``all_apps=True``.  Session config values (workers, seed,
        strategies, ...) seed the plan defaults; explicit ``defaults``
        and per-entry overrides win.  Returns the (not yet run)
        :class:`~repro.search.orchestrator.SearchOrchestrator`.
        """
        from repro.search.orchestrator import (
            PlanEntry,
            SearchOrchestrator,
        )

        run_store = _pick(store, self._store)
        if run_store is None:
            raise ConfigError(
                "plan() requires a run store — construct the session "
                "with store= (or SessionConfig.store_dir)"
            )
        merged: Dict[str, object] = {
            "workers": self.config.workers,
            "seed": self.config.seed,
            "strategies": tuple(self.config.strategies),
            "aggregate": self.config.aggregate,
            "error_metric": self.config.error_metric,
            "config_batch": self.config.config_batch,
            "checkpoint_every": self.config.checkpoint_every,
        }
        # the session's sweep cache is NOT injected into defaults: the
        # orchestrator carries the session itself, so entries reach the
        # live cache through session.search's fallback — and defaults
        # stay JSON-serializable for to_dict()/--json
        given = sum(
            1 for x in (entries, plan_file) if x is not None
        ) + int(all_apps)
        if given != 1:
            raise ConfigError(
                "plan() takes exactly one of entries=, plan_file=, or "
                "all_apps=True"
            )
        if plan_file is not None:
            from repro.search.orchestrator import _check_overrides

            explicit = dict(defaults or {})
            _check_overrides(explicit, "plan defaults")
            orch = SearchOrchestrator.from_plan_file(
                plan_file, store=run_store, resume=resume, session=self
            )
            # plan-file defaults win over session config; explicit
            # defaults= win over both
            for key, value in merged.items():
                orch.defaults.setdefault(key, value)
            orch.defaults.update(explicit)
            return orch
        merged.update(dict(defaults or {}))
        if all_apps:
            return SearchOrchestrator.over_all_apps(
                run_store, resume=resume, session=self, **merged
            )
        plan_entries: List[PlanEntry] = []
        for entry in entries or ():
            if isinstance(entry, PlanEntry):
                plan_entries.append(entry)
            elif isinstance(entry, str):
                plan_entries.append(PlanEntry(scenario=entry))
            elif isinstance(entry, Mapping):
                plan_entries.append(PlanEntry.from_dict(entry))
            else:
                raise ConfigError(
                    f"plan entries must be scenario names, dicts, or "
                    f"PlanEntry — got {type(entry).__name__}"
                )
        if not plan_entries:
            raise ConfigError("plan has no entries")
        # fail fast on typo'd scenario names (like the plan-file path)
        # instead of running every valid sibling first and reporting
        # the bad entry as 'failed' at the end
        from repro.search.orchestrator import app_scenarios

        known = app_scenarios()
        unknown = [
            e.scenario for e in plan_entries if e.scenario not in known
        ]
        if unknown:
            raise UnknownNameError(
                f"unknown plan scenarios {unknown} "
                f"(available: {sorted(known)})"
            )
        return SearchOrchestrator(
            run_store,
            plan_entries,
            resume=resume,
            defaults=merged,
            session=self,
        )

    # -- distributed execution ----------------------------------------------
    def fleet(
        self,
        entries: Optional[Sequence[object]] = None,
        *,
        plan_file: Union[None, str, Path] = None,
        all_apps: bool = False,
        defaults: Optional[Mapping[str, object]] = None,
        store: object = _UNSET,
        workers: int = 2,
        shards: int = 1,
        ttl_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        worker_env: Optional[Mapping[int, Mapping[str, str]]] = None,
    ):
        """Run a search plan across a multi-process worker fleet.

        Entries/defaults/store resolve exactly like :meth:`plan` (the
        fleet over the same sharded entries is bit-identical to that
        serial orchestrator); ``workers`` processes claim entries via
        the lease protocol, ``shards`` expands each entry with
        per-shard seeds first.  Returns the
        :class:`~repro.dist.fleet.FleetResult` with the elected winner
        front.  See :mod:`repro.dist`.
        """
        orch = self.plan(
            entries,
            plan_file=plan_file,
            all_apps=all_apps,
            defaults=defaults,
            store=store,
        )
        from repro.dist.fleet import run_fleet

        return run_fleet(
            orch.entries,
            orch.store,
            workers=workers,
            shards=shards,
            defaults=orch.defaults,
            session_config=self.config,
            ttl_s=ttl_s,
            deadline_s=deadline_s,
            worker_env=worker_env,
        )

    def merge_runs(
        self,
        sources: Sequence[object],
        *,
        store: object = _UNSET,
        verify: bool = True,
    ):
        """Union-merge runs from ``sources`` into the session store.

        Facade over :func:`repro.dist.store_merge.merge_stores`;
        returns its :class:`~repro.dist.store_merge.MergeReport`.
        """
        run_store = _pick(store, self._store)
        if run_store is None:
            raise ConfigError(
                "merge_runs() requires a run store — construct the "
                "session with store= (or SessionConfig.store_dir)"
            )
        from repro.dist.store_merge import merge_stores

        return merge_stores(run_store, sources, verify=verify)

    # -- runs ----------------------------------------------------------------
    def runs(self, store: object = _UNSET) -> RunsView:
        """List / compare / prune / diff the stored runs."""
        run_store = _pick(store, self._store)
        if run_store is None:
            raise ConfigError(
                "runs() requires a run store — construct the session "
                "with store= (or SessionConfig.store_dir)"
            )
        from repro.search.store import RunStore

        if not isinstance(run_store, RunStore):
            run_store = RunStore(run_store)
        return RunsView(run_store)

    # -- shared-resource telemetry ------------------------------------------
    def warm_start(
        self,
        kernels: Sequence[KernelLike],
        models: Sequence[Optional[ErrorModel]] = (None,),
    ) -> int:
        """Pre-compile estimators into the shared memo (see
        :func:`repro.core.api.warm_start_estimator_memo`)."""
        return warm_start_estimator_memo(
            kernels,
            models=models,
            opt_level=self.config.opt_level,
            minimal_pushes=self.config.minimal_pushes,
        )

    def estimator_memo_stats(self) -> Dict[str, int]:
        """Occupancy and hit/miss counters of the shared estimator
        memo (process-wide; shared with forked worker pools).

        A view over the process-wide metrics registry
        (``repro_memo_*`` in :data:`repro.obs.metrics.REGISTRY`)."""
        return _memo_stats()

    def cache_stats(self) -> Optional[Dict[str, object]]:
        """Sweep-cache counters, or ``None`` without a cache."""
        return (
            self._cache.cache_stats() if self._cache is not None else None
        )

    def stats(self) -> Dict[str, object]:
        """All shared-resource telemetry in one mapping.

        Every sub-dict is a view over the process-wide metrics
        registry (:data:`repro.obs.metrics.REGISTRY`) — the same
        instruments ``/v1/metrics?format=prom`` exposes when serving.
        """
        from repro.codegen.compile import _cache_stats

        out: Dict[str, object] = {
            "session_id": self.id,
            "config_fingerprint": self.config.fingerprint(),
            "estimator_memo": self.estimator_memo_stats(),
            "config_kernel_cache": dict(_cache_stats()),
        }
        if self._cache is not None:
            out["sweep_cache"] = self._cache.cache_stats()
        if self._store is not None:
            out["run_store"] = {
                "root": str(self._store.root),
                "runs": len(self._store.list_runs()),
            }
        return out
