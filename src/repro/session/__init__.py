"""Session facade: shared resources + the whole workflow as methods.

* :class:`Session` — owns the estimator memo, sweep cache, run store,
  and default models; exposes ``estimate`` / ``sweep`` / ``tune`` /
  ``search`` / ``plan`` / ``runs`` (see :mod:`repro.session.session`);
* :class:`SessionConfig` — the frozen, JSON-serializable defaults with
  a stable content fingerprint (see :mod:`repro.session.config`);
* :class:`RunsView` — run-store list/compare/prune/diff, the object
  behind ``session.runs()`` and ``python -m repro runs`` (see
  :mod:`repro.session.runs`).

The legacy free functions (``repro.estimate_error``,
``repro.sweep_error``, ``repro.greedy_tune``, ``repro.robust_tune``,
``repro.search.search``) are deprecated thin wrappers constructing a
default session; they warn once per callsite and disappear in 2.0.
"""

from repro.session.config import SessionConfig
from repro.session.runs import RunsView
from repro.session.session import Session

__all__ = ["RunsView", "Session", "SessionConfig"]
