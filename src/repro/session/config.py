"""The frozen, serializable configuration of a :class:`~repro.session.Session`.

Before the session facade, every entry point re-plumbed the same knobs
(`opt_level`, `workers`, `aggregate`, `seed`, cache/store directories,
...) through its own keyword list.  :class:`SessionConfig` is the one
place those defaults live: a frozen dataclass that validates on
construction, round-trips through JSON (``to_dict``/``from_dict``), and
has a stable content :meth:`fingerprint` that session provenance stamps
onto every result.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.ir.types import DType
from repro.util.errors import ConfigError

#: serializable aggregator specs (callables stay per-call arguments)
AggregateSpec = Union[str, Tuple[str, float]]

#: strategy line-up default — mirrors repro.search.strategies
#: .DEFAULT_STRATEGIES (kept literal here so importing the config does
#: not pull the whole search subsystem in)
_DEFAULT_STRATEGIES: Tuple[str, ...] = ("greedy", "delta", "anneal")

_ERROR_METRICS = ("worst", "actual", "estimate")


@dataclass(frozen=True)
class SessionConfig:
    """Defaults shared by every method of one :class:`Session`.

    All fields are plain JSON-expressible values, so a config can be
    persisted next to the results it produced and rebuilt with
    :meth:`from_dict`.  Instances are frozen — derive variants with
    :meth:`with_options`.
    """

    #: target precision for demotion candidates
    demote_to: DType = DType.F32
    #: optimization pipeline level for generated adjoints
    opt_level: int = 2
    #: TBR tape minimization (ablation hook)
    minimal_pushes: bool = True
    #: sweep aggregation — ``"max"``/``"mean"``/``"p95"``/
    #: ``("percentile", q)``
    aggregate: AggregateSpec = "max"
    #: ``>= 2`` fans search candidate pools over worker processes
    workers: int = 0
    #: RNG seed for stochastic search strategies
    seed: int = 0
    #: Pareto error axis (``"worst"``, ``"actual"``, ``"estimate"``)
    error_metric: str = "worst"
    #: score proposal pools through the compile-once lane kernel
    config_batch: bool = True
    #: default search evaluation budget
    budget: int = 64
    #: default search strategy line-up
    strategies: Tuple[str, ...] = _DEFAULT_STRATEGIES
    #: run-store checkpoint cadence, in computed batches
    checkpoint_every: int = 1
    #: sweep-cache directory (``None``: in-memory only when a cache
    #: object is supplied, no cache otherwise)
    cache_dir: Optional[str] = None
    #: run-store directory (``None``: searches are not persisted)
    store_dir: Optional[str] = None
    #: fault-injection plan — inline JSON or a file path, resolved by
    #: :meth:`repro.faults.FaultPlan.load` (``None``: faults disabled)
    fault_plan: Optional[str] = None
    #: fsync store/cache writes (durability against power loss)
    fsync: bool = False
    #: distributed-claim lease time-to-live (seconds): how long a
    #: fleet worker may go without a checkpoint heartbeat before its
    #: entry is stolen (:mod:`repro.dist.lease`)
    lease_ttl_s: float = 30.0
    #: run the static precision analysis (:mod:`repro.analyze`) before
    #: searches and tunes: statically pinned / demotion-safe variables
    #: are pruned from the candidate space and the greedy ladder is
    #: ordered most-sensitive-last.  Off by default — with ``False``
    #: every result is bit-identical to a pre-analysis session
    analyze: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.demote_to, DType):
            try:
                object.__setattr__(self, "demote_to", DType(self.demote_to))
            except ValueError:
                raise ConfigError(
                    f"demote_to: unknown precision {self.demote_to!r}"
                ) from None
        if self.error_metric not in _ERROR_METRICS:
            raise ConfigError(
                f"error_metric must be one of {_ERROR_METRICS}, "
                f"got {self.error_metric!r}"
            )
        # numeric fields are coerced, not just checked, so a config
        # rebuilt from hand-edited JSON ("workers": "4") cannot smuggle
        # strings into comparisons deep inside the search driver
        for name in ("opt_level", "budget", "checkpoint_every",
                     "workers", "seed"):
            value = getattr(self, name)
            try:
                object.__setattr__(self, name, int(value))
            except (TypeError, ValueError):
                raise ConfigError(
                    f"{name} must be an integer, got {value!r}"
                ) from None
        if self.opt_level not in (0, 1, 2):
            raise ConfigError(
                f"opt_level must be 0, 1, or 2, got {self.opt_level!r}"
            )
        if self.budget < 1:
            raise ConfigError(f"budget must be >= 1, got {self.budget!r}")
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, "
                f"got {self.checkpoint_every!r}"
            )
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers!r}")
        if callable(self.aggregate):
            raise ConfigError(
                "SessionConfig.aggregate must be serializable (a name or "
                "a ('percentile', q) pair); pass callables per call "
                "instead"
            )
        if isinstance(self.strategies, str):
            # tuple("greedy") would silently become per-character names
            raise ConfigError(
                "strategies must be a sequence of names, not a bare "
                f"string — got {self.strategies!r}"
            )
        if not isinstance(self.strategies, tuple):
            object.__setattr__(
                self, "strategies", tuple(self.strategies)
            )
        bad = [s for s in self.strategies if not isinstance(s, str)]
        if bad:
            raise ConfigError(
                f"strategies must be names (str), got {bad!r}"
            )
        if isinstance(self.aggregate, list):
            object.__setattr__(
                self, "aggregate", tuple(self.aggregate)
            )
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, str
        ):
            raise ConfigError(
                "fault_plan must be inline JSON or a file path, "
                f"got {self.fault_plan!r}"
            )
        object.__setattr__(self, "fsync", bool(self.fsync))
        object.__setattr__(self, "analyze", bool(self.analyze))
        try:
            object.__setattr__(
                self, "lease_ttl_s", float(self.lease_ttl_s)
            )
        except (TypeError, ValueError):
            raise ConfigError(
                f"lease_ttl_s must be a number, got {self.lease_ttl_s!r}"
            ) from None
        if self.lease_ttl_s <= 0:
            raise ConfigError(
                f"lease_ttl_s must be > 0, got {self.lease_ttl_s!r}"
            )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A plain JSON-expressible mapping of every field."""
        out = asdict(self)
        out["demote_to"] = self.demote_to.value
        out["strategies"] = list(self.strategies)
        if isinstance(self.aggregate, tuple):
            out["aggregate"] = list(self.aggregate)
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "SessionConfig":
        """Rebuild a config serialized with :meth:`to_dict`.

        :raises ConfigError: for unknown keys or invalid values.
        """
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ConfigError(
                f"SessionConfig: unknown keys {unknown} "
                f"(known: {sorted(known)})"
            )
        data = dict(raw)
        if isinstance(data.get("aggregate"), list):
            data["aggregate"] = tuple(data["aggregate"])
        if "strategies" in data and not isinstance(
            data["strategies"], str
        ):
            # a bare string is left alone for __post_init__ to reject
            try:
                data["strategies"] = tuple(data["strategies"])
            except TypeError:
                raise ConfigError(
                    f"strategies must be a sequence of names, "
                    f"got {data['strategies']!r}"
                ) from None
        return cls(**data)  # type: ignore[arg-type]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "SessionConfig":
        return cls.from_dict(json.loads(payload))

    def fingerprint(self) -> str:
        """Stable content hash — the config half of result provenance."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # -- derivation ----------------------------------------------------------
    def with_options(self, **changes: object) -> "SessionConfig":
        """A copy with the given fields replaced (validated again)."""
        try:
            return replace(self, **changes)
        except TypeError as exc:
            raise ConfigError(str(exc)) from None
