"""Run-store management: the object behind ``session.runs()``.

:class:`RunsView` wraps a :class:`~repro.search.store.RunStore` with
the list / compare / prune / diff-fronts operations the unified CLI's
``runs`` subcommand exposes (``python -m repro runs --list/--compare/
--prune/--diff``).  The data operations live on the store itself
(:meth:`RunStore.prune`, :meth:`RunStore.compare`,
:meth:`RunStore.diff_fronts`); this view adds the human-readable
renderings so the CLI and interactive sessions print identical tables.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.search.store import RunStore


def _age(created: Optional[float]) -> str:
    if not created:
        return "-"
    delta = max(time.time() - float(created), 0.0)
    if delta < 120:
        return f"{delta:.0f}s"
    if delta < 7200:
        return f"{delta / 60:.0f}m"
    if delta < 172800:
        return f"{delta / 3600:.1f}h"
    return f"{delta / 86400:.1f}d"


class RunsView:
    """List, compare, prune, and diff the runs of one store."""

    def __init__(self, store: RunStore) -> None:
        self.store = store

    # -- data operations -----------------------------------------------------
    def list(self) -> List[Dict[str, object]]:
        """Manifests of every stored run, newest first."""
        return self.store.list_runs()

    def compare(
        self, run_ids: Optional[Sequence[str]] = None
    ) -> List[Dict[str, object]]:
        """Cross-run comparison rows (see :meth:`RunStore.compare`)."""
        return self.store.compare(run_ids)

    def prune(
        self,
        max_age_days: Optional[float] = None,
        max_runs: Optional[int] = None,
        incomplete: bool = False,
        dry_run: bool = False,
        min_age_hours: float = 1.0,
    ) -> List[Dict[str, object]]:
        """Garbage-collect runs (see :meth:`RunStore.prune`)."""
        return self.store.prune(
            max_age_days=max_age_days,
            max_runs=max_runs,
            incomplete=incomplete,
            dry_run=dry_run,
            min_age_hours=min_age_hours,
        )

    def diff(self, run_a: str, run_b: str) -> Dict[str, object]:
        """Front diff of two runs (see :meth:`RunStore.diff_fronts`)."""
        return self.store.diff_fronts(run_a, run_b)

    def merge(self, sources: Sequence[object], *, verify: bool = True):
        """Union-merge source stores in (see :meth:`RunStore.merge`)."""
        return self.store.merge(sources, verify=verify)

    # -- renderings ----------------------------------------------------------
    def format_list(
        self, manifests: Optional[List[Dict[str, object]]] = None
    ) -> str:
        if manifests is None:
            manifests = self.list()
        lines = [
            f"{len(manifests)} stored run(s) [store: {self.store.root}]"
        ]
        if manifests:
            lines.append(
                f"  {'run':12s} {'label':14s} {'kernel':14s} "
                f"{'state':10s} {'evals':>5s} {'front':>5s} {'age':>6s}"
            )
        for m in manifests:
            front = m.get("front") or []
            state = "completed" if m.get("completed") else "partial"
            evals = self.store.stored_evaluation_count(m)
            lines.append(
                f"  {str(m.get('run_id', ''))[:12]:12s} "
                f"{str(m.get('label', ''))[:14]:14s} "
                f"{str(m.get('kernel', ''))[:14]:14s} "
                f"{state:10s} {evals:5d} "
                f"{len(front):5d} {_age(m.get('created')):>6s}"
            )
        return "\n".join(lines)

    def format_compare(
        self, rows: Optional[List[Dict[str, object]]] = None
    ) -> str:
        if rows is None:
            rows = self.compare()
        lines = [
            f"comparing {len(rows)} run(s) [store: {self.store.root}]",
            f"  {'run':12s} {'label':14s} {'state':10s} {'evals':>5s} "
            f"{'front':>5s} {'thr':>9s} {'best@thr cycles':>15s}",
        ]
        for r in rows:
            state = "completed" if r["completed"] else "partial"
            thr = (
                f"{r['threshold']:.3g}"
                if r["threshold"] is not None
                else "-"
            )
            best = (
                f"{r['best_cycles']:.1f}"
                if r["best_cycles"] is not None
                else "-"
            )
            lines.append(
                f"  {str(r['run_id'])[:12]:12s} "
                f"{str(r['label'])[:14]:14s} {state:10s} "
                f"{r['n_evaluations']:5d} {r['front_size']:5d} "
                f"{thr:>9s} {best:>15s}"
            )
        return "\n".join(lines)

    def format_prune(
        self, pruned: Sequence[Dict[str, object]], dry_run: bool
    ) -> str:
        verb = "would prune" if dry_run else "pruned"
        lines = [
            f"{verb} {len(pruned)} run(s) [store: {self.store.root}]"
        ]
        for m in pruned:
            state = "completed" if m.get("completed") else "partial"
            lines.append(
                f"  {str(m.get('run_id', ''))[:12]:12s} "
                f"{str(m.get('label', ''))[:14]:14s} {state:10s} "
                f"age {_age(m.get('created'))}"
            )
        return "\n".join(lines)

    def format_merge(self, report) -> str:
        """Render a :class:`~repro.dist.store_merge.MergeReport`."""
        lines = [
            f"merged {len(report.sources)} store(s) into "
            f"{report.dest}: {report.imported} imported, "
            f"{report.updated} updated, {report.unchanged} unchanged, "
            f"{report.skipped_corrupt} skipped (corrupt), "
            f"{report.conflicts} conflict(s)"
        ]
        for row in report.runs:
            if row.get("action") == "unchanged":
                continue
            detail = row.get("reason") or ""
            lines.append(
                f"  {str(row.get('run_id', ''))[:12]:12s} "
                f"{str(row.get('action')):15s} "
                f"from {row.get('source')}"
                + (f"  ({detail})" if detail else "")
            )
        return "\n".join(lines)

    def format_diff(self, diff: Dict[str, object]) -> str:
        lines = [
            f"front diff: {str(diff['run_a'])[:12]} "
            f"({diff['label_a']})  vs  {str(diff['run_b'])[:12]} "
            f"({diff['label_b']})"
        ]
        only_a: List[Dict[str, object]] = diff["only_a"]  # type: ignore[assignment]
        only_b: List[Dict[str, object]] = diff["only_b"]  # type: ignore[assignment]
        common: List[Dict[str, object]] = diff["common"]  # type: ignore[assignment]
        if diff["identical"]:
            lines.append(
                f"  fronts are identical ({len(common)} shared points)"
            )
            return "\n".join(lines)
        for name, only in (("a", only_a), ("b", only_b)):
            for p in only:
                lines.append(
                    f"  only {name}: {str(p['key'])[:12]:12s} "
                    f"error={p['error']:.4g} cycles={p['cycles']:.1f}"
                )
        for c in common:
            if c["same"]:
                continue
            lines.append(
                f"  changed: {str(c['key'])[:12]:12s} "
                f"error {c['error_a']:.4g} -> {c['error_b']:.4g}  "
                f"cycles {c['cycles_a']:.1f} -> {c['cycles_b']:.1f}"
            )
        shared_same = sum(1 for c in common if c["same"])
        lines.append(
            f"  ({shared_same} shared point(s) unchanged, "
            f"{len(only_a)} only in a, {len(only_b)} only in b)"
        )
        return "\n".join(lines)
