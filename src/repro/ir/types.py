"""Scalar/array types of the repro IR and IEEE-754 precision metadata.

The IR is deliberately small: boolean, 64-bit integer, and the three IEEE
binary floating-point precisions the paper discusses (half, single,
double).  Quad precision is out of scope — Python has no native binary128.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DType(enum.Enum):
    """Element data types supported by the IR."""

    B1 = "bool"
    I64 = "i64"
    F16 = "f16"
    F32 = "f32"
    F64 = "f64"

    @property
    def is_float(self) -> bool:
        """True for the IEEE floating-point dtypes."""
        return self in (DType.F16, DType.F32, DType.F64)

    @property
    def is_integer(self) -> bool:
        return self is DType.I64

    @property
    def bits(self) -> int:
        """Storage width in bits."""
        return _BITS[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


_BITS = {
    DType.B1: 1,
    DType.I64: 64,
    DType.F16: 16,
    DType.F32: 32,
    DType.F64: 64,
}

#: Machine epsilon (unit roundoff = ulp(1)/2 * 2 convention: we use the
#: classic eps = b^(1-p), the gap between 1.0 and the next float) for each
#: floating dtype.  These follow IEEE 754-2019.
MACHINE_EPS = {
    DType.F16: 2.0 ** -10,
    DType.F32: 2.0 ** -23,
    DType.F64: 2.0 ** -52,
}

#: Rank used for implicit promotion; higher rank wins.  Public because
#: the vectorized config-pool lowering (repro.codegen.compile) encodes
#: dtypes by this rank so that ``promote`` becomes an integer ``max`` —
#: the two must never diverge.
PROMOTION_RANK = {
    DType.B1: 0,
    DType.I64: 1,
    DType.F16: 2,
    DType.F32: 3,
    DType.F64: 4,
}
_PROMOTION_RANK = PROMOTION_RANK


def promote(a: DType, b: DType) -> DType:
    """Return the common dtype of a binary arithmetic operation.

    Follows C-like promotion: the higher-ranked dtype wins, booleans
    promote to integers when mixed with numerics.
    """
    if a is b:
        return a
    winner = a if _PROMOTION_RANK[a] >= _PROMOTION_RANK[b] else b
    if winner is DType.B1:
        return DType.I64
    return winner


def machine_eps(dtype: DType) -> float:
    """Machine epsilon of a floating dtype.

    :raises KeyError: for non-float dtypes.
    """
    return MACHINE_EPS[dtype]


@dataclass(frozen=True)
class Type:
    """Base class for IR value types."""

    dtype: DType

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)


@dataclass(frozen=True)
class ScalarType(Type):
    """A scalar value of ``dtype``."""

    def __str__(self) -> str:
        return self.dtype.value


@dataclass(frozen=True)
class ArrayType(Type):
    """A 1-D array (buffer) of ``dtype`` elements, passed by reference."""

    def __str__(self) -> str:
        return f"{self.dtype.value}[]"


# Convenient singletons -----------------------------------------------------
BOOL = ScalarType(DType.B1)
I64 = ScalarType(DType.I64)
F16 = ScalarType(DType.F16)
F32 = ScalarType(DType.F32)
F64 = ScalarType(DType.F64)
F16_ARR = ArrayType(DType.F16)
F32_ARR = ArrayType(DType.F32)
F64_ARR = ArrayType(DType.F64)
I64_ARR = ArrayType(DType.I64)

_ANNOTATION_TABLE = {
    "bool": BOOL,
    "int": I64,
    "i64": I64,
    "float": F64,
    "f16": F16,
    "f32": F32,
    "f64": F64,
    "half": F16,
    "single": F32,
    "double": F64,
    "int[]": I64_ARR,
    "i64[]": I64_ARR,
    "float[]": F64_ARR,
    "f16[]": F16_ARR,
    "f32[]": F32_ARR,
    "f64[]": F64_ARR,
}


def parse_annotation(ann: object) -> Type:
    """Map a Python annotation to an IR :class:`Type`.

    Accepted forms: the builtins ``float``/``int``/``bool`` and the strings
    ``"f16" | "f32" | "f64" | "i64" | "bool"`` with an optional trailing
    ``[]`` for arrays (e.g. ``"f64[]"``).

    :raises KeyError: if the annotation is not recognised.
    """
    if ann is float:
        return F64
    if ann is int:
        return I64
    if ann is bool:
        return BOOL
    if isinstance(ann, str):
        key = ann.strip().replace(" ", "")
        return _ANNOTATION_TABLE[key]
    raise KeyError(f"unsupported type annotation: {ann!r}")
