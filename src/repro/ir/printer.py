"""Pretty-printer: IR → human-readable pseudo-source.

Used by ``repr`` of kernels, in tests (golden comparisons of adjoint
structure), and for debugging transformation passes.  The format is
Python-ish but explicit about declarations and casts.
"""

from __future__ import annotations

from typing import List

from repro.ir import nodes as N

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "//": 5, "%": 5,
}


def format_expr(e: N.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(e, N.Const):
        if isinstance(e.value, bool):
            return "True" if e.value else "False"
        return repr(e.value)
    if isinstance(e, N.Name):
        return e.id
    if isinstance(e, N.Index):
        return f"{e.base}[{format_expr(e.index)}]"
    if isinstance(e, N.BinOp):
        prec = _PRECEDENCE[e.op]
        text = (
            f"{format_expr(e.left, prec)} {e.op} "
            f"{format_expr(e.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, N.UnaryOp):
        inner = format_expr(e.operand, 6)
        return f"(-{inner})" if e.op == "-" else f"(not {inner})"
    if isinstance(e, N.Call):
        args = ", ".join(format_expr(a) for a in e.args)
        return f"{e.fn}({args})"
    if isinstance(e, N.Cast):
        return f"cast[{e.to.value}]({format_expr(e.operand)})"
    raise TypeError(f"unknown expr node {type(e).__name__}")


def format_stmt(s: N.Stmt, indent: int = 0) -> List[str]:
    """Render one statement as a list of indented lines."""
    pad = "    " * indent
    if isinstance(s, N.VarDecl):
        init = f" = {format_expr(s.init)}" if s.init is not None else ""
        return [f"{pad}{s.name}: {s.dtype.value}{init}"]
    if isinstance(s, N.Assign):
        return [f"{pad}{_lvalue(s.target)} = {format_expr(s.value)}"]
    if isinstance(s, N.For):
        lines = [
            f"{pad}for {s.var} in range({format_expr(s.lo)}, "
            f"{format_expr(s.hi)}, {format_expr(s.step)}):"
        ]
        lines.extend(_body(s.body, indent + 1))
        return lines
    if isinstance(s, N.While):
        lines = [f"{pad}while {format_expr(s.cond)}:"]
        lines.extend(_body(s.body, indent + 1))
        return lines
    if isinstance(s, N.If):
        lines = [f"{pad}if {format_expr(s.cond)}:"]
        lines.extend(_body(s.then, indent + 1))
        if s.orelse:
            lines.append(f"{pad}else:")
            lines.extend(_body(s.orelse, indent + 1))
        return lines
    if isinstance(s, N.Break):
        return [f"{pad}break"]
    if isinstance(s, N.Return):
        return [f"{pad}return {format_expr(s.value)}"]
    if isinstance(s, N.ReturnTuple):
        vals = ", ".join(format_expr(v) for v in s.values)
        return [f"{pad}return ({vals})"]
    if isinstance(s, N.ExprStmt):
        return [f"{pad}{format_expr(s.value)}"]
    if isinstance(s, N.Push):
        return [f"{pad}push[{s.stack}]({format_expr(s.value)})"]
    if isinstance(s, N.Pop):
        return [f"{pad}{_lvalue(s.target)} = pop[{s.stack}]()"]
    if isinstance(s, N.PopDiscard):
        return [f"{pad}pop[{s.stack}]()"]
    if isinstance(s, N.TraceAppend):
        return [f"{pad}trace[{s.trace}] << {format_expr(s.value)}"]
    raise TypeError(f"unknown stmt node {type(s).__name__}")


def _lvalue(lv: N.LValue) -> str:
    if isinstance(lv, N.Name):
        return lv.id
    return f"{lv.base}[{format_expr(lv.index)}]"


def _body(body: List[N.Stmt], indent: int) -> List[str]:
    if not body:
        return ["    " * indent + "pass"]
    lines: List[str] = []
    for s in body:
        lines.extend(format_stmt(s, indent))
    return lines


def format_function(fn: N.Function) -> str:
    """Render a whole function."""
    params = ", ".join(
        f"{p.name}: {p.type}" + ("" if p.differentiable else " [nodiff]")
        for p in fn.params
    )
    ret = f" -> {fn.ret_dtype.value}" if fn.ret_dtype is not None else ""
    lines = [f"def {fn.name}({params}){ret}:"]
    lines.extend(_body(fn.body, 1))
    return "\n".join(lines)
