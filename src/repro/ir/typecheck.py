"""Type inference / re-inference over IR functions.

The frontend fills expression dtypes while parsing, but transformations
that change *storage* precisions (the mixed-precision tuner) must re-infer
every expression dtype afterwards.  :func:`infer_types` performs a full
pass; :func:`collect_var_dtypes` exposes the declared dtype of every
variable, which the interpreter, code generator, and cost model all share.
"""

from __future__ import annotations

from typing import Dict

from repro.frontend import intrinsics as _intr
from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType, promote
from repro.ir.visitor import walk_stmts
from repro.util.errors import TypeCheckError


def collect_var_dtypes(fn: N.Function) -> Dict[str, DType]:
    """Map every scalar/array variable of ``fn`` to its storage dtype.

    Array names map to their *element* dtype.  Loop variables are I64.
    Adjoint-generated temporaries (``_d_*`` etc.) appear via their
    VarDecls like any other local.
    """
    env: Dict[str, DType] = {}
    for p in fn.params:
        env[p.name] = p.type.dtype
    for s in walk_stmts(fn.body):
        if isinstance(s, N.VarDecl):
            env[s.name] = s.dtype
        elif isinstance(s, N.For):
            env[s.var] = DType.I64
    return env


def infer_types(fn: N.Function) -> None:
    """(Re)compute the dtype of every expression in ``fn`` in place.

    :raises TypeCheckError: on references to unknown variables or calls to
        unknown intrinsics.
    """
    env = collect_var_dtypes(fn)
    arrays = {
        p.name for p in fn.params if isinstance(p.type, ArrayType)
    }
    for s in walk_stmts(fn.body):
        _infer_stmt(fn, s, env, arrays)


def _infer_stmt(
    fn: N.Function, s: N.Stmt, env: Dict[str, DType], arrays: set
) -> None:
    if isinstance(s, N.VarDecl):
        if s.init is not None:
            _infer_expr(fn, s.init, env, arrays)
    elif isinstance(s, N.Assign):
        _infer_lvalue(fn, s.target, env, arrays)
        _infer_expr(fn, s.value, env, arrays)
    elif isinstance(s, N.For):
        for e in (s.lo, s.hi, s.step):
            _infer_expr(fn, e, env, arrays)
    elif isinstance(s, N.While):
        _infer_expr(fn, s.cond, env, arrays)
    elif isinstance(s, N.If):
        _infer_expr(fn, s.cond, env, arrays)
    elif isinstance(s, N.Return):
        _infer_expr(fn, s.value, env, arrays)
    elif isinstance(s, N.ReturnTuple):
        for v in s.values:
            _infer_expr(fn, v, env, arrays)
    elif isinstance(s, N.ExprStmt):
        _infer_expr(fn, s.value, env, arrays)
    elif isinstance(s, N.Push):
        _infer_expr(fn, s.value, env, arrays)
    elif isinstance(s, N.Pop):
        _infer_lvalue(fn, s.target, env, arrays)
    elif isinstance(s, N.TraceAppend):
        _infer_expr(fn, s.value, env, arrays)


def _infer_lvalue(
    fn: N.Function, lv: N.LValue, env: Dict[str, DType], arrays: set
) -> None:
    if isinstance(lv, N.Name):
        lv.dtype = _lookup(fn, lv.id, env)
    else:
        _infer_expr(fn, lv.index, env, arrays)
        lv.dtype = _lookup(fn, lv.base, env)


def _lookup(fn: N.Function, name: str, env: Dict[str, DType]) -> DType:
    try:
        return env[name]
    except KeyError as exc:
        raise TypeCheckError(
            f"{fn.name}: reference to unknown variable {name!r}"
        ) from exc


def intrinsic_result_dtype(fname: str, arg_dtypes) -> DType:
    """Result dtype of an intrinsic call.

    Models C math-library behaviour: the call is evaluated at the common
    float precision of its arguments (``sinf`` vs ``sin``); integer-only
    arguments promote to double.
    """
    p: DType = DType.I64
    for d in arg_dtypes:
        p = promote(p, d)
    if not p.is_float:
        p = DType.F64
    if fname in ("floor", "ceil", "step_ge"):
        return p
    return p


def _infer_expr(
    fn: N.Function, e: N.Expr, env: Dict[str, DType], arrays: set
) -> DType:
    if isinstance(e, N.Const):
        if e.dtype is None:
            if isinstance(e.value, bool):
                e.dtype = DType.B1
            elif isinstance(e.value, int):
                e.dtype = DType.I64
            else:
                e.dtype = DType.F64
        return e.dtype
    if isinstance(e, N.Name):
        e.dtype = _lookup(fn, e.id, env)
        return e.dtype
    if isinstance(e, N.Index):
        _infer_expr(fn, e.index, env, arrays)
        e.dtype = _lookup(fn, e.base, env)
        return e.dtype
    if isinstance(e, N.BinOp):
        lt = _infer_expr(fn, e.left, env, arrays)
        rt = _infer_expr(fn, e.right, env, arrays)
        if e.op in N.CMPOPS or e.op in N.BOOLOPS:
            e.dtype = DType.B1
        elif e.op == "/":
            e.dtype = promote(promote(lt, rt), DType.F64)
        elif e.op in ("//", "%"):
            e.dtype = promote(lt, rt)
        else:
            e.dtype = promote(lt, rt)
        return e.dtype
    if isinstance(e, N.UnaryOp):
        it = _infer_expr(fn, e.operand, env, arrays)
        e.dtype = DType.B1 if e.op == "not" else it
        return e.dtype
    if isinstance(e, N.Call):
        if e.fn not in _intr.INTRINSICS:
            raise TypeCheckError(
                f"{fn.name}: call to unknown intrinsic {e.fn!r}"
            )
        ads = [_infer_expr(fn, a, env, arrays) for a in e.args]
        e.dtype = intrinsic_result_dtype(e.fn, ads)
        return e.dtype
    if isinstance(e, N.Cast):
        _infer_expr(fn, e.operand, env, arrays)
        e.dtype = e.to
        return e.dtype
    raise TypeCheckError(
        f"{fn.name}: unknown expression node {type(e).__name__}"
    )
