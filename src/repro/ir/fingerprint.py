"""Content-addressed IR fingerprints.

The sweep result cache and the estimator-reuse memo key their entries by
*what the function computes*, not by object identity: two kernels with
identical IR (e.g. the same source re-registered, or the same precision
configuration re-applied) hash to the same fingerprint and share cached
results across calls — and, for the on-disk sweep cache, across
processes.

The fingerprint is the SHA-256 of the pretty-printed IR plus the
parameter signature.  The printer renders every node kind (including the
adjoint-only Push/Pop/TraceAppend), so any semantic change to the IR
changes the digest; ``meta`` and source locations are deliberately
excluded — they don't affect results.
"""

from __future__ import annotations

import hashlib

from repro.ir import nodes as N
from repro.ir.printer import format_function


def ir_fingerprint(fn: N.Function) -> str:
    """Stable hex digest of an IR function's content."""
    sig = ",".join(
        f"{p.name}:{p.type}:{int(p.differentiable)}" for p in fn.params
    )
    ret = fn.ret_dtype.value if fn.ret_dtype is not None else "-"
    payload = f"{fn.name}({sig})->{ret}\n{format_function(fn)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
