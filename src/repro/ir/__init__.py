"""The repro intermediate representation (IR).

A small typed imperative language — the program representation that the
CHEF-FP-style analysis transforms.  See :mod:`repro.ir.nodes` for the node
set and :mod:`repro.ir.types` for the type system.
"""

from repro.ir.types import (
    DType,
    Type,
    ScalarType,
    ArrayType,
    promote,
    machine_eps,
    parse_annotation,
    BOOL,
    I64,
    F16,
    F32,
    F64,
    F16_ARR,
    F32_ARR,
    F64_ARR,
    I64_ARR,
)
from repro.ir.nodes import (
    Expr,
    Const,
    Name,
    Index,
    BinOp,
    UnaryOp,
    Call,
    Cast,
    Stmt,
    VarDecl,
    Assign,
    For,
    While,
    If,
    Break,
    Return,
    ReturnTuple,
    ExprStmt,
    Push,
    Pop,
    PopDiscard,
    TraceAppend,
    Param,
    Function,
)
from repro.ir.printer import format_expr, format_stmt, format_function
from repro.ir.validate import validate_function
from repro.ir import builder

__all__ = [
    "DType", "Type", "ScalarType", "ArrayType", "promote", "machine_eps",
    "parse_annotation",
    "BOOL", "I64", "F16", "F32", "F64",
    "F16_ARR", "F32_ARR", "F64_ARR", "I64_ARR",
    "Expr", "Const", "Name", "Index", "BinOp", "UnaryOp", "Call", "Cast",
    "Stmt", "VarDecl", "Assign", "For", "While", "If", "Break", "Return",
    "ReturnTuple", "ExprStmt", "Push", "Pop", "PopDiscard", "TraceAppend",
    "Param", "Function",
    "format_expr", "format_stmt", "format_function", "validate_function",
    "builder",
]
