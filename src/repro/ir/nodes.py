"""IR node definitions.

The IR models a small, C-like, typed imperative language — the subset of
C++ that the paper's benchmarks exercise through Clad.  Expressions are
side-effect free; all mutation happens through statements.  Every node
carries an optional ``loc`` (source line in the original Python function)
so error estimates can be attributed back to source, mirroring CHEF-FP's
"source info capture".

Two node families exist only in *adjoint* functions produced by the
reverse-mode transformation: :class:`Push`/:class:`Pop` (the Fig. 2 tape
stacks) and :class:`TraceAppend` (sensitivity tracking for Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.ir.types import DType, Type


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of all IR expressions.

    ``dtype`` is filled in by type inference; transformations that build
    fresh expressions are expected to set it (the builder helpers do).
    """

    dtype: Optional[DType] = field(default=None, init=False, compare=False)
    loc: Optional[int] = field(default=None, init=False, compare=False)


@dataclass
class Const(Expr):
    """A literal constant (float, int, or bool)."""

    value: Union[float, int, bool]

    def __post_init__(self) -> None:
        if isinstance(self.value, bool):
            self.dtype = DType.B1
        elif isinstance(self.value, int):
            self.dtype = DType.I64
        else:
            self.dtype = DType.F64


@dataclass
class Name(Expr):
    """A read of a scalar variable."""

    id: str


@dataclass
class Index(Expr):
    """A read of one array element: ``base[index]``."""

    base: str
    index: Expr


#: Binary operators.  ``//`` is integer (floor) division, ``%`` modulo.
BINOPS = ("+", "-", "*", "/", "//", "%")
#: Comparison operators (result dtype B1).
CMPOPS = ("==", "!=", "<", "<=", ">", ">=")
#: Short-circuit boolean operators (result dtype B1).
BOOLOPS = ("and", "or")


@dataclass
class BinOp(Expr):
    """A binary arithmetic / comparison / boolean operation."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """Unary negation (``-``) or logical not (``not``)."""

    op: str
    operand: Expr


@dataclass
class Call(Expr):
    """A call to a registered intrinsic (``sin``, ``sqrt``, ``pow`` ...).

    Calls to other ``@kernel`` functions never appear in the IR — the
    frontend inlines them at parse time.
    """

    fn: str
    args: List[Expr]


@dataclass
class Cast(Expr):
    """An explicit precision cast; value semantics of C's ``(T)x``."""

    to: DType
    operand: Expr

    def __post_init__(self) -> None:
        self.dtype = self.to


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of all IR statements."""

    loc: Optional[int] = field(default=None, init=False, compare=False)


#: Assignment targets are either a scalar name or an array element.
LValue = Union[Name, Index]


@dataclass
class VarDecl(Stmt):
    """Declaration of a local scalar: ``name: dtype = init``.

    The declared dtype is the variable's *storage precision*; assignments
    to the variable round to this precision.  This is the hook used by the
    mixed-precision machinery (demoting a variable rewrites its dtype).
    """

    name: str
    dtype: DType
    init: Optional[Expr]


@dataclass
class Assign(Stmt):
    """``target = value``; the target must already be declared."""

    target: LValue
    value: Expr


@dataclass
class For(Stmt):
    """A ``for var in range(lo, hi, step)`` counted loop.

    ``step`` must be a positive integer constant expression for
    differentiability (the adjoint reverses iteration order).
    """

    var: str
    lo: Expr
    hi: Expr
    step: Expr
    body: List[Stmt]


@dataclass
class While(Stmt):
    """A ``while cond`` loop.

    The adjoint transformation counts trips in the forward sweep and
    replays the body adjoint that many times in reverse.
    """

    cond: Expr
    body: List[Stmt]


@dataclass
class If(Stmt):
    """``if cond: then else: orelse``."""

    cond: Expr
    then: List[Stmt]
    orelse: List[Stmt]


@dataclass
class Break(Stmt):
    """``break`` — only valid inside a loop.

    For differentiability the frontend restricts it to the *guarded break*
    pattern: the loop body's first statement is ``if cond: break``.
    """


@dataclass
class Return(Stmt):
    """``return value`` — only valid as the final statement of a body."""

    value: Expr


@dataclass
class ReturnTuple(Stmt):
    """Multi-value return used by generated adjoint functions."""

    values: List[Expr]


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (intrinsics with effects)."""

    value: Expr


# ---- adjoint-only statements ----------------------------------------------


@dataclass
class Push(Stmt):
    """Push ``value`` onto the named tape stack (forward sweep)."""

    stack: str
    value: Expr


@dataclass
class Pop(Stmt):
    """Pop the named tape stack into ``target`` (backward sweep)."""

    stack: str
    target: LValue


@dataclass
class PopDiscard(Stmt):
    """Pop the named tape stack and discard the value."""

    stack: str


@dataclass
class TraceAppend(Stmt):
    """Append ``value`` to the named trace list (sensitivity profiles)."""

    trace: str
    value: Expr


# --------------------------------------------------------------------------
# Functions
# --------------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter.

    Scalars are passed by value; arrays by reference (mutations visible to
    the caller).  ``differentiable`` marks the parameter as an independent
    input for AD; integer/bool params are never differentiable.
    """

    name: str
    type: Type
    differentiable: bool = True


@dataclass
class Function:
    """An IR function: the unit of differentiation and code generation."""

    name: str
    params: List[Param]
    body: List[Stmt]
    ret_dtype: Optional[DType]
    #: names of locals declared in the body, filled by the type checker
    locals: List[str] = field(default_factory=list)
    #: free-form metadata (source file, adjoint provenance, ...)
    meta: dict = field(default_factory=dict)

    def param(self, name: str) -> Param:
        """Look up a parameter by name.

        :raises KeyError: if no such parameter exists.
        """
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)
