"""Convenience constructors for IR nodes.

Transformation passes build a lot of expressions; these helpers keep that
code terse and make sure ``dtype`` is always populated.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence, Union

from repro.ir import nodes as N
from repro.ir.types import DType, promote


def const(value: Union[float, int, bool], dtype: Optional[DType] = None) -> N.Const:
    """Build a constant; dtype inferred from the Python type by default."""
    c = N.Const(value)
    if dtype is not None:
        c.dtype = dtype
    return c


def fzero() -> N.Const:
    """The float64 literal ``0.0``."""
    return const(0.0)


def fone() -> N.Const:
    """The float64 literal ``1.0``."""
    return const(1.0)


def name(ident: str, dtype: DType = DType.F64) -> N.Name:
    """Build a scalar variable reference."""
    n = N.Name(ident)
    n.dtype = dtype
    return n


def index(base: str, idx: N.Expr, dtype: DType = DType.F64) -> N.Index:
    """Build an array element reference ``base[idx]``."""
    n = N.Index(base, idx)
    n.dtype = dtype
    return n


def binop(op: str, left: N.Expr, right: N.Expr) -> N.BinOp:
    """Build a binary operation; dtype via standard promotion."""
    b = N.BinOp(op, left, right)
    if op in N.CMPOPS or op in N.BOOLOPS:
        b.dtype = DType.B1
    elif op == "/":
        b.dtype = promote(
            promote(left.dtype or DType.F64, right.dtype or DType.F64),
            DType.F64,
        )
    else:
        b.dtype = promote(left.dtype or DType.F64, right.dtype or DType.F64)
    return b


def add(left: N.Expr, right: N.Expr) -> N.BinOp:
    return binop("+", left, right)


def sub(left: N.Expr, right: N.Expr) -> N.BinOp:
    return binop("-", left, right)


def mul(left: N.Expr, right: N.Expr) -> N.BinOp:
    return binop("*", left, right)


def div(left: N.Expr, right: N.Expr) -> N.BinOp:
    return binop("/", left, right)


def neg(operand: N.Expr) -> N.UnaryOp:
    u = N.UnaryOp("-", operand)
    u.dtype = operand.dtype
    return u


def call(fn: str, args: Sequence[N.Expr], dtype: DType = DType.F64) -> N.Call:
    """Build an intrinsic call with an explicit result dtype."""
    c = N.Call(fn, list(args))
    c.dtype = dtype
    return c


def cast(to: DType, operand: N.Expr) -> N.Cast:
    return N.Cast(to, operand)


def fabs(e: N.Expr) -> N.Call:
    """``fabs(e)`` — the workhorse of every error model."""
    return call("fabs", [e], dtype=e.dtype or DType.F64)


def assign(target: N.LValue, value: N.Expr) -> N.Assign:
    return N.Assign(target, value)


def decl(
    ident: str, dtype: DType, init: Optional[N.Expr] = None
) -> N.VarDecl:
    return N.VarDecl(ident, dtype, init)


def accumulate(target: N.LValue, value: N.Expr) -> N.Assign:
    """``target += value`` desugared to ``target = target + value``."""
    read: N.Expr
    if isinstance(target, N.Name):
        read = name(target.id, target.dtype or DType.F64)
    else:
        read = index(
            target.base, clone(target.index), target.dtype or DType.F64
        )
    return N.Assign(clone(target), add(read, value))


def clone(node):
    """Deep-copy an IR subtree (nodes are mutable dataclasses)."""
    return copy.deepcopy(node)


def for_range(
    var: str, lo: N.Expr, hi: N.Expr, body: List[N.Stmt], step: Optional[N.Expr] = None
) -> N.For:
    return N.For(var, lo, hi, step if step is not None else const(1), body)
