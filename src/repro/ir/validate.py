"""Structural validation of IR functions.

Run after the frontend and after every transformation pass (in tests and
in debug mode) to catch malformed trees early: undeclared names, dtype
holes, breaks outside loops, returns in the middle of a body, stray
adjoint-only nodes in primal functions, and so on.

Two checks target *authored-kernel* mistakes rather than transform
bugs and raise :class:`~repro.util.errors.IRConfigError` (also a
``ConfigError``) so user-facing surfaces treat them as invalid input:

* **duplicate parameters** — two parameters sharing a name;
* **use before definition** — reading a scalar that was declared
  without an initializer and has no assignment anywhere earlier in the
  program text (a definite bug at runtime; assignments inside earlier
  branches or loops count as defining, so the check never flags a
  merely path-dependent definition).
"""

from __future__ import annotations

from typing import List, Set

from repro.ir import nodes as N
from repro.ir.types import ArrayType
from repro.ir.visitor import walk_expr
from repro.util.errors import IRConfigError, ValidationError


def validate_function(fn: N.Function, allow_adjoint_nodes: bool = False) -> None:
    """Validate ``fn``; raise :class:`ValidationError` on the first problem.

    :param allow_adjoint_nodes: permit Push/Pop/TraceAppend/ReturnTuple
        (set for generated adjoint functions).
    """
    v = _Validator(fn, allow_adjoint_nodes)
    v.run()


class _Validator:
    def __init__(self, fn: N.Function, allow_adjoint: bool) -> None:
        self.fn = fn
        self.allow_adjoint = allow_adjoint
        self.scalars: Set[str] = set()
        self.arrays: Set[str] = set()
        #: scalars with a value on every path reaching the current
        #: statement *textually* — params, initialized declarations,
        #: and any earlier assignment (branch- and loop-insensitive,
        #: so only definite use-before-definition is flagged)
        self.defined: Set[str] = set()
        for p in fn.params:
            if isinstance(p.type, ArrayType):
                self.arrays.add(p.name)
            else:
                self.scalars.add(p.name)
                self.defined.add(p.name)

    def run(self) -> None:
        seen = set()
        for p in self.fn.params:
            if p.name in seen:
                raise IRConfigError(
                    f"{self.fn.name}: duplicate parameter {p.name!r}"
                )
            seen.add(p.name)
        self._check_body(self.fn.body, in_loop=False, toplevel=True)

    # -- statements ---------------------------------------------------------
    def _check_body(
        self, body: List[N.Stmt], in_loop: bool, toplevel: bool
    ) -> None:
        for i, s in enumerate(body):
            is_last = i == len(body) - 1
            if isinstance(s, (N.Return, N.ReturnTuple)) and not is_last:
                raise ValidationError(
                    f"{self.fn.name}: return must be the final statement"
                )
            if isinstance(s, (N.Return, N.ReturnTuple)) and not toplevel:
                raise ValidationError(
                    f"{self.fn.name}: return inside control flow is not "
                    "supported"
                )
            self._check_stmt(s, in_loop, toplevel)

    def _check_stmt(self, s: N.Stmt, in_loop: bool, toplevel: bool) -> None:
        if isinstance(s, N.VarDecl):
            if s.name in self.scalars or s.name in self.arrays:
                raise ValidationError(
                    f"{self.fn.name}: redeclaration of {s.name!r}"
                )
            if s.init is not None:
                self._check_expr(s.init)
                self.defined.add(s.name)
            self.scalars.add(s.name)
        elif isinstance(s, N.Assign):
            self._check_expr(s.value)
            self._check_lvalue(s.target)
            if isinstance(s.target, N.Name):
                self.defined.add(s.target.id)
        elif isinstance(s, N.For):
            for e in (s.lo, s.hi, s.step):
                self._check_expr(e)
            self.scalars.add(s.var)
            self.defined.add(s.var)
            self._check_body(s.body, in_loop=True, toplevel=False)
        elif isinstance(s, N.While):
            self._check_expr(s.cond)
            self._check_body(s.body, in_loop=True, toplevel=False)
        elif isinstance(s, N.If):
            self._check_expr(s.cond)
            self._check_body(s.then, in_loop, toplevel=False)
            self._check_body(s.orelse, in_loop, toplevel=False)
        elif isinstance(s, N.Break):
            if not in_loop:
                raise ValidationError(
                    f"{self.fn.name}: break outside of a loop"
                )
        elif isinstance(s, N.Return):
            self._check_expr(s.value)
            if self.fn.ret_dtype is None:
                raise ValidationError(
                    f"{self.fn.name}: return in a void function"
                )
        elif isinstance(s, N.ReturnTuple):
            self._require_adjoint("ReturnTuple")
            for v in s.values:
                self._check_expr(v)
        elif isinstance(s, N.ExprStmt):
            self._check_expr(s.value)
        elif isinstance(s, N.Push):
            self._require_adjoint("Push")
            # a save-before-overwrite push legitimately reads a scalar
            # that has no value yet (the matching pop restores it), so
            # the use-before-definition check does not apply here
            self._check_expr(s.value, allow_undefined=True)
        elif isinstance(s, N.Pop):
            self._require_adjoint("Pop")
            self._check_lvalue(s.target)
            if isinstance(s.target, N.Name):
                self.defined.add(s.target.id)
        elif isinstance(s, N.PopDiscard):
            self._require_adjoint("PopDiscard")
        elif isinstance(s, N.TraceAppend):
            self._require_adjoint("TraceAppend")
            self._check_expr(s.value)
        else:
            raise ValidationError(
                f"{self.fn.name}: unknown statement {type(s).__name__}"
            )

    def _require_adjoint(self, what: str) -> None:
        if not self.allow_adjoint:
            raise ValidationError(
                f"{self.fn.name}: {what} node is only valid in adjoint "
                "functions"
            )

    # -- expressions --------------------------------------------------------
    def _check_lvalue(self, lv: N.LValue) -> None:
        if isinstance(lv, N.Name):
            if lv.id not in self.scalars:
                raise ValidationError(
                    f"{self.fn.name}: assignment to undeclared scalar "
                    f"{lv.id!r}"
                )
        elif isinstance(lv, N.Index):
            if lv.base not in self.arrays:
                raise ValidationError(
                    f"{self.fn.name}: indexed store to non-array "
                    f"{lv.base!r}"
                )
            self._check_expr(lv.index)
        else:
            raise ValidationError(
                f"{self.fn.name}: invalid lvalue {type(lv).__name__}"
            )

    def _check_expr(
        self, e: N.Expr, allow_undefined: bool = False
    ) -> None:
        for node in walk_expr(e):
            if isinstance(node, N.Name):
                if node.id not in self.scalars:
                    raise ValidationError(
                        f"{self.fn.name}: use of undeclared scalar "
                        f"{node.id!r}"
                    )
                if not allow_undefined and node.id not in self.defined:
                    raise IRConfigError(
                        f"{self.fn.name}: use of {node.id!r} before "
                        "definition (declared without initializer, "
                        "no assignment reaches this read)"
                    )
            elif isinstance(node, N.Index):
                if node.base not in self.arrays:
                    raise ValidationError(
                        f"{self.fn.name}: indexed read of non-array "
                        f"{node.base!r}"
                    )
            elif isinstance(node, N.BinOp):
                if (
                    node.op not in N.BINOPS
                    and node.op not in N.CMPOPS
                    and node.op not in N.BOOLOPS
                ):
                    raise ValidationError(
                        f"{self.fn.name}: unknown operator {node.op!r}"
                    )
            elif isinstance(node, N.Const):
                if node.dtype is None:
                    raise ValidationError(
                        f"{self.fn.name}: constant without dtype"
                    )
            # Call/Cast/UnaryOp: children checked by the walk
