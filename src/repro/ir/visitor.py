"""Generic visitor / transformer infrastructure for the IR.

Two base classes are provided:

* :class:`ExprVisitor` — read-only traversal of expressions (and, via
  :class:`StmtVisitor`, of statements).  Dispatch is by node class name.
* :class:`Transformer` — rebuild-style traversal; each ``visit_*`` may
  return a replacement node.  Statement visits may return a single
  statement, a list of statements (splicing), or ``None`` (deletion).

Optimization passes and the AD transformation build on these.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.ir import nodes as N


class ExprVisitor:
    """Read-only expression traversal with per-class dispatch."""

    def visit(self, node: N.Expr) -> object:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: N.Expr) -> object:
        for child in iter_child_exprs(node):
            self.visit(child)
        return None


class StmtVisitor(ExprVisitor):
    """Read-only statement + expression traversal."""

    def visit_stmt(self, stmt: N.Stmt) -> object:
        method = getattr(self, f"visit_{type(stmt).__name__}", None)
        if method is not None:
            return method(stmt)
        return self.generic_visit_stmt(stmt)

    def visit_body(self, body: Iterable[N.Stmt]) -> None:
        for s in body:
            self.visit_stmt(s)

    def generic_visit_stmt(self, stmt: N.Stmt) -> object:
        for e in iter_stmt_exprs(stmt):
            self.visit(e)
        for b in iter_stmt_bodies(stmt):
            self.visit_body(b)
        return None


class Transformer:
    """Rebuilding traversal.

    Expression hooks (``visit_Const`` etc.) must return an expression.
    Statement hooks return a statement, a list (spliced in place), or
    ``None`` to drop the statement.
    """

    # -- expressions -------------------------------------------------------
    def visit(self, node: N.Expr) -> N.Expr:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: N.Expr) -> N.Expr:
        if isinstance(node, N.BinOp):
            node.left = self.visit(node.left)
            node.right = self.visit(node.right)
        elif isinstance(node, N.UnaryOp):
            node.operand = self.visit(node.operand)
        elif isinstance(node, N.Call):
            node.args = [self.visit(a) for a in node.args]
        elif isinstance(node, N.Cast):
            node.operand = self.visit(node.operand)
        elif isinstance(node, N.Index):
            node.index = self.visit(node.index)
        return node

    # -- statements --------------------------------------------------------
    def visit_stmt(
        self, stmt: N.Stmt
    ) -> Union[N.Stmt, List[N.Stmt], None]:
        method = getattr(self, f"visit_{type(stmt).__name__}", None)
        if method is not None:
            return method(stmt)
        return self.generic_visit_stmt(stmt)

    def visit_body(self, body: List[N.Stmt]) -> List[N.Stmt]:
        out: List[N.Stmt] = []
        for s in body:
            r = self.visit_stmt(s)
            if r is None:
                continue
            if isinstance(r, list):
                out.extend(r)
            else:
                out.append(r)
        return out

    def generic_visit_stmt(
        self, stmt: N.Stmt
    ) -> Union[N.Stmt, List[N.Stmt], None]:
        if isinstance(stmt, N.VarDecl):
            if stmt.init is not None:
                stmt.init = self.visit(stmt.init)
        elif isinstance(stmt, N.Assign):
            stmt.target = self._visit_lvalue(stmt.target)
            stmt.value = self.visit(stmt.value)
        elif isinstance(stmt, N.For):
            stmt.lo = self.visit(stmt.lo)
            stmt.hi = self.visit(stmt.hi)
            stmt.step = self.visit(stmt.step)
            stmt.body = self.visit_body(stmt.body)
        elif isinstance(stmt, N.While):
            stmt.cond = self.visit(stmt.cond)
            stmt.body = self.visit_body(stmt.body)
        elif isinstance(stmt, N.If):
            stmt.cond = self.visit(stmt.cond)
            stmt.then = self.visit_body(stmt.then)
            stmt.orelse = self.visit_body(stmt.orelse)
        elif isinstance(stmt, N.Return):
            stmt.value = self.visit(stmt.value)
        elif isinstance(stmt, N.ReturnTuple):
            stmt.values = [self.visit(v) for v in stmt.values]
        elif isinstance(stmt, N.ExprStmt):
            stmt.value = self.visit(stmt.value)
        elif isinstance(stmt, N.Push):
            stmt.value = self.visit(stmt.value)
        elif isinstance(stmt, N.Pop):
            stmt.target = self._visit_lvalue(stmt.target)
        elif isinstance(stmt, N.TraceAppend):
            stmt.value = self.visit(stmt.value)
        return stmt

    def _visit_lvalue(self, lv: N.LValue) -> N.LValue:
        if isinstance(lv, N.Index):
            lv.index = self.visit(lv.index)
        return lv


# --------------------------------------------------------------------------
# Child iteration helpers
# --------------------------------------------------------------------------


def iter_child_exprs(node: N.Expr) -> Iterable[N.Expr]:
    """Yield the immediate sub-expressions of an expression node."""
    if isinstance(node, N.BinOp):
        yield node.left
        yield node.right
    elif isinstance(node, N.UnaryOp):
        yield node.operand
    elif isinstance(node, N.Call):
        yield from node.args
    elif isinstance(node, N.Cast):
        yield node.operand
    elif isinstance(node, N.Index):
        yield node.index


def walk_expr(node: N.Expr) -> Iterable[N.Expr]:
    """Yield ``node`` and all transitive sub-expressions (pre-order)."""
    yield node
    for c in iter_child_exprs(node):
        yield from walk_expr(c)


def iter_stmt_exprs(stmt: N.Stmt) -> Iterable[N.Expr]:
    """Yield the immediate expressions referenced by a statement.

    For :class:`Assign`/:class:`Pop`, an :class:`Index` *target*'s index
    expression is yielded (it is read), but the target itself is not.
    """
    if isinstance(stmt, N.VarDecl):
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, N.Assign):
        if isinstance(stmt.target, N.Index):
            yield stmt.target.index
        yield stmt.value
    elif isinstance(stmt, N.For):
        yield stmt.lo
        yield stmt.hi
        yield stmt.step
    elif isinstance(stmt, N.While):
        yield stmt.cond
    elif isinstance(stmt, N.If):
        yield stmt.cond
    elif isinstance(stmt, N.Return):
        yield stmt.value
    elif isinstance(stmt, N.ReturnTuple):
        yield from stmt.values
    elif isinstance(stmt, N.ExprStmt):
        yield stmt.value
    elif isinstance(stmt, N.Push):
        yield stmt.value
    elif isinstance(stmt, N.Pop):
        if isinstance(stmt.target, N.Index):
            yield stmt.target.index
    elif isinstance(stmt, N.TraceAppend):
        yield stmt.value


def iter_stmt_bodies(stmt: N.Stmt) -> Iterable[List[N.Stmt]]:
    """Yield the nested statement lists of a compound statement."""
    if isinstance(stmt, N.For) or isinstance(stmt, N.While):
        yield stmt.body
    elif isinstance(stmt, N.If):
        yield stmt.then
        yield stmt.orelse


def walk_stmts(body: Iterable[N.Stmt]) -> Iterable[N.Stmt]:
    """Yield every statement in ``body``, recursing into compounds."""
    for s in body:
        yield s
        for b in iter_stmt_bodies(s):
            yield from walk_stmts(b)
