"""Sweep-engine benchmark: batched versus scalar-loop adjoint evaluation.

Measures the central performance claim of the sweep subsystem: a
vectorized N-point error sweep versus the naive Python loop of
single-input ``ErrorEstimator.execute`` calls, with per-point agreement
checked at the same time (the batch backend is built to reproduce the
scalar path bit-for-bit; the benchmark records the observed worst
relative difference rather than assuming it).

``benchmarks/bench_sweep.py`` drives this to emit ``BENCH_sweep.json``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.api import ErrorEstimator
from repro.core.models import AdaptModel, ErrorModel
from repro.frontend.registry import Kernel
from repro.sweep.batch import BatchReport
from repro.sweep.samplers import Sweep


@dataclass
class SweepBenchResult:
    """One app's batched-versus-loop comparison."""

    app: str
    n: int
    #: wall-clock of one batched ``execute_batch`` call
    batched_s: float
    #: wall-clock of the N-call scalar ``execute`` loop
    loop_s: float
    #: which backend the batch path actually used
    backend: str
    #: worst relative difference between per-point batched and scalar
    #: results (over value, total_error, and every per-variable entry)
    max_rel_diff: float
    speedup: float = field(init=False)

    def __post_init__(self) -> None:
        self.speedup = (
            self.loop_s / self.batched_s if self.batched_s > 0 else 0.0
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def _rel_diff(a: float, b: float) -> float:
    if a == b:
        return 0.0
    denom = max(abs(a), abs(b))
    if denom == 0.0:
        return 0.0
    return abs(a - b) / denom


def compare_batch_to_loop(
    batch: BatchReport, scalar_reports: Sequence
) -> float:
    """Worst per-point relative difference between the two backends."""
    worst = 0.0
    for i, rep in enumerate(scalar_reports):
        p = batch.point(i)
        worst = max(worst, _rel_diff(rep.value, p.value))
        worst = max(worst, _rel_diff(rep.total_error, p.total_error))
        for v, e in rep.per_variable.items():
            worst = max(worst, _rel_diff(e, p.per_variable.get(v, 0.0)))
    return worst


def run_sweep_benchmark(
    app_name: str,
    kernel: Kernel,
    samples: Sweep,
    fixed: Optional[Mapping[str, object]] = None,
    model: Optional[ErrorModel] = None,
) -> SweepBenchResult:
    """Time one batched sweep against the equivalent scalar loop.

    Build time (adjoint generation + compilation, both scalar and
    batched) is excluded from both sides — each variant is warmed on a
    2-point prefix before timing, matching how the paper excludes Clad
    compilation from analysis time.
    """
    model = model or AdaptModel()
    est = ErrorEstimator(kernel, model=model)
    fixed = dict(fixed or {})
    names = [p.name for p in est.primal_ir.params]
    n = len(next(iter(samples.values())))

    def point_args(i: int) -> List[object]:
        out: List[object] = []
        for p in est.primal_ir.params:
            if p.name in samples:
                v = samples[p.name][i]
                out.append(
                    int(v) if p.type.dtype.value == "i64" else float(v)
                )
            else:
                out.append(fixed[p.name])
        return out

    batch_args: List[object] = [
        np.asarray(samples[nm]) if nm in samples else fixed[nm]
        for nm in names
    ]
    warm_args: List[object] = [
        np.asarray(samples[nm][:2]) if nm in samples else fixed[nm]
        for nm in names
    ]

    # warm both paths: compile the batched variant, trigger lazy imports
    est.execute_batch(*warm_args)
    est.execute(*point_args(0))

    t0 = time.perf_counter()
    batch = est.execute_batch(*batch_args)
    batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar_reports = [est.execute(*point_args(i)) for i in range(n)]
    loop_s = time.perf_counter() - t0

    return SweepBenchResult(
        app=app_name,
        n=n,
        batched_s=batched_s,
        loop_s=loop_s,
        backend=batch.backend,
        max_rel_diff=compare_batch_to_loop(batch, scalar_reports),
    )


def blackscholes_sweep(n: int, seed: int = 404) -> Sweep:
    """The PARSEC-style option-portfolio distribution as a sweep over
    ``bs_price``'s scalar parameters."""
    rng = np.random.default_rng(seed)
    spt = rng.uniform(25.0, 150.0, n)
    return {
        "sptprice": spt,
        "strike": spt * rng.uniform(0.8, 1.2, n),
        "rate": rng.uniform(0.02, 0.1, n),
        "volatility": rng.uniform(0.05, 0.65, n),
        "otime": rng.uniform(0.05, 1.0, n),
        "otype": rng.integers(0, 2, n).astype(np.int64),
    }
