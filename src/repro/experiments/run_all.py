"""CLI driver: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments.run_all            # everything, quick sizes
    python -m repro.experiments.run_all --table 1
    python -m repro.experiments.run_all --figure 4 --full
    python -m repro.experiments.run_all --figure 9
    python -m repro.experiments.run_all --csv out/   # also dump CSV files
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.experiments import tables
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.render import ascii_heatmap, ascii_table, to_csv
from repro.tuning.perforation import normalize


def _print_figure(fig_id: int, full: bool, csv_dir: Optional[str]) -> None:
    spec = FIGURES[fig_id]
    rows = run_figure(fig_id, full=full)
    headers = [
        spec.xlabel,
        "CHEF time(ms)", "ADAPT time(ms)", "App time(ms)",
        "CHEF mem(MB)", "ADAPT mem(MB)", "App mem(MB)",
    ]
    table_rows: List[List[object]] = []
    for r in rows:
        table_rows.append(
            [
                r.size,
                r.chef.time_ms,
                float("nan") if r.adapt.oom else r.adapt.time_ms,
                r.app.time_ms,
                r.chef.peak_mb,
                r.adapt.peak_mb,
                r.app.peak_mb,
            ]
        )
    print(
        ascii_table(
            headers, table_rows,
            title=f"\nFigure {fig_id}: {spec.name} — analysis time & "
                  f"peak memory vs {spec.xlabel}",
        )
    )
    if csv_dir:
        _dump(csv_dir, f"figure{fig_id}.csv", headers, table_rows)


def _print_fig9(csv_dir: Optional[str]) -> None:
    split, series, report = tables.hpccg_sensitivity()
    names = list(series)
    mat = np.vstack([normalize(series[v]) for v in names])
    print(
        "\n"
        + ascii_heatmap(
            mat,
            names,
            title="Figure 9: HPCCG per-iteration normalized sensitivity",
        )
    )
    print(f"  suggested high-precision prefix (split point): "
          f"{split} iterations")
    if csv_dir:
        headers = ["iteration"] + names
        rows = [
            [i] + [float(series[v][i]) for v in names]
            for i in range(len(next(iter(series.values()))))
        ]
        _dump(csv_dir, "figure9.csv", headers, rows)


def _dump(csv_dir: str, name: str, headers, rows) -> None:
    from repro.util import atomio

    os.makedirs(csv_dir, exist_ok=True)
    path = os.path.join(csv_dir, name)
    atomio.atomic_write(
        path, to_csv(headers, rows).encode("utf-8"), site="csv.write"
    )
    print(f"  [csv written: {path}]")


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        description="Regenerate CHEF-FP paper tables/figures"
    )
    ap.add_argument("--table", type=int, choices=(1, 2, 3, 4), default=None)
    ap.add_argument(
        "--figure", type=int, choices=(4, 5, 6, 7, 8, 9), default=None
    )
    ap.add_argument("--full", action="store_true",
                    help="use the larger (paper-closer) size sweeps")
    ap.add_argument("--csv", type=str, default=None, metavar="DIR",
                    help="also write CSV files to DIR")
    args = ap.parse_args(argv)

    run_tables = (
        [args.table] if args.table else
        ([] if args.figure else [1, 2, 3, 4])
    )
    run_figs = (
        [args.figure] if args.figure else
        ([] if args.table else [4, 5, 6, 7, 8, 9])
    )

    for t in run_tables:
        if t == 1:
            h, r = tables.table1()
            print("\n" + ascii_table(
                h, r, title="Table I: mixed-precision versions"))
            if args.csv:
                _dump(args.csv, "table1.csv", h, r)
        elif t == 2:
            h, r = tables.table2(full=args.full)
            print("\n" + ascii_table(
                h, r,
                title="Table II: CHEF-FP improvement over ADAPT "
                      "(geomean across sweep)"))
            if args.csv:
                _dump(args.csv, "table2.csv", h, r)
        elif t == 3:
            h, r = tables.table3()
            print("\n" + ascii_table(
                h, r, title="Table III: k-Means mixed-precision configs"))
            if args.csv:
                _dump(args.csv, "table3.csv", h, r)
        elif t == 4:
            h, r = tables.table4()
            print("\n" + ascii_table(
                h, r, title="Table IV: Black-Scholes FastApprox configs"))
            if args.csv:
                _dump(args.csv, "table4.csv", h, r)

    for f in run_figs:
        if f == 9:
            _print_fig9(args.csv)
        else:
            _print_figure(f, args.full, args.csv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
