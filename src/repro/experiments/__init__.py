"""Experiment harness: regenerates every table and figure of the paper.

Entry points:

* ``python -m repro.experiments.run_all`` — run everything, print the
  paper-shaped tables and series (add ``--full`` for the larger sweeps),
* :mod:`repro.experiments.figures` — Figs. 4–8 time/memory sweeps,
* :mod:`repro.experiments.tables` — Tables I–IV,
* :mod:`repro.experiments.fig9` — the HPCCG sensitivity heat map and
  loop-split analysis.

See EXPERIMENTS.md for paper-versus-measured results and the scaling
notes (problem sizes are laptop-scaled; shapes, not absolute numbers,
are the reproduction target).
"""

from repro.experiments.measure import (
    Measurement,
    measure_chef,
    measure_adapt,
    measure_app,
)
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments import tables

__all__ = [
    "Measurement",
    "measure_chef",
    "measure_adapt",
    "measure_app",
    "FIGURES",
    "run_figure",
    "tables",
]
