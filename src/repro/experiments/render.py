"""Plain-text rendering of experiment outputs (tables, heat maps, CSV).

The paper's artifacts are tables and plots; in a terminal-only
reproduction we print aligned ASCII tables and a character-ramp heat
map, and optionally dump CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional, Sequence

import numpy as np


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def _fmt(v: object) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v != v:  # NaN
            return "OOM"
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.2e}"
        return f"{v:.3g}"
    return str(v)


#: character ramp for heat maps, low → high
_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    col_label: str = "iteration",
    title: Optional[str] = None,
    max_cols: int = 100,
) -> str:
    """Render a [0,1]-normalized matrix as a character heat map
    (the terminal version of the paper's Fig. 9)."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2:
        raise ValueError("heatmap expects a 2-D matrix")
    n_rows, n_cols = m.shape
    if n_cols > max_cols:  # downsample columns by averaging
        stride = int(np.ceil(n_cols / max_cols))
        pad = (-n_cols) % stride
        mp = np.pad(m, ((0, 0), (0, pad)), constant_values=0.0)
        m = mp.reshape(n_rows, -1, stride).mean(axis=2)
        n_cols = m.shape[1]
    lw = max(len(s) for s in row_labels) if row_labels else 0
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, row in zip(row_labels, m):
        chars = "".join(
            _RAMP[min(int(v * (len(_RAMP) - 1)), len(_RAMP) - 1)]
            if v == v else "?"
            for v in np.clip(row, 0.0, 1.0)
        )
        lines.append(f"{label.rjust(lw)} |{chars}|")
    lines.append(f"{''.rjust(lw)}  {col_label} 0..{n_cols - 1} "
                 f"(ramp: '{_RAMP}')")
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Serialize rows to CSV text."""
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(headers)
    for r in rows:
        w.writerow(["" if c is None else c for c in r])
    return buf.getvalue()
