"""Tables I–IV of the paper's evaluation.

Each ``table*`` function returns ``(headers, rows)`` ready for
:func:`repro.experiments.render.ascii_table`; the numbers land in
EXPERIMENTS.md next to the paper's values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps import arclength, blackscholes, hpccg, kmeans, simpsons
from repro.codegen.compile import compile_primal, compile_raw
from repro.core.api import ErrorEstimator
from repro.core.models import AdaptModel, ApproxModel
from repro.experiments.figures import figure_improvements, run_figure
from repro.tuning import (
    PrecisionConfig,
    find_split_iteration,
    iteration_sensitivity,
    validate_config,
)
from repro.tuning.greedy import run_greedy_tune

# -- Table I -----------------------------------------------------------------

#: default workload sizes for the mixed-precision experiment
TABLE1_SIZES = {
    "arclength": 10_000,
    "simpsons": 10_000,
    "kmeans": 1_000,
    "hpccg": 10,  # z-dimension
}


def _tune_and_validate(
    app, size: int, threshold: float
) -> Tuple[float, float, float]:
    """(actual, estimated, speedup) of the greedy configuration."""
    args = app.make_workload(size)
    tuning = run_greedy_tune(app.INSTRUMENTED, args, threshold)
    validation = validate_config(
        app.INSTRUMENTED, tuning.config, app.make_workload(size)
    )
    return (
        validation.actual_error,
        tuning.estimated_error,
        validation.speedup,
    )


def _hpccg_row(
    nz: int, threshold: float, max_iter: int = 20
) -> Tuple[float, float, float]:
    """HPCCG's Table I entry comes from the loop-split configuration
    discovered via the Fig. 9 sensitivity profile (paper §IV-4)."""
    split, series, report = hpccg_sensitivity(nz=nz, max_iter=max_iter)
    # actual error: residual-norm difference between full-f64 CG and the
    # manually-split kernel, as in the paper.  max_iter is calibrated so
    # the f64 run is *just* converged (normr ~1e-12 like the paper's
    # 96k-row system after 60 iterations) rather than ground down to
    # denormal recurrence noise — our 240-row system converges far
    # faster per iteration.
    full = compile_primal(hpccg.hpccg_cg.ir)
    ref = float(full(*hpccg.make_workload(nz, max_iter=max_iter)))
    split_fn = compile_primal(hpccg.hpccg_cg_split.ir)
    mixed = float(
        split_fn(*hpccg.make_split_workload(nz, split, max_iter=max_iter))
    )
    actual = abs(ref - mixed)
    # estimated error: the demoted vectors' registers, scaled by the
    # fraction of their sensitivity mass in the demoted tail
    est = 0.0
    for var in ("x", "r", "p", "Ap"):
        s = series.get(var)
        delta = report.per_variable.get(var, 0.0)
        if s is None or s.sum() == 0.0:
            continue
        est += delta * float(s[split:].sum() / s.sum())
    # modelled speedup of the split configuration
    cost_full = _counting_cost(
        hpccg.hpccg_cg.ir, hpccg.make_workload(nz, max_iter=max_iter)
    )
    cost_split = _counting_cost(
        hpccg.hpccg_cg_split.ir,
        hpccg.make_split_workload(nz, split, max_iter=max_iter),
    )
    speedup = cost_full / cost_split if cost_split > 0 else 1.0
    return actual, est, speedup


def _counting_cost(fn, args, approx=None) -> float:
    compiled = compile_raw(fn, counting=True, approx=approx)
    _, extras = compiled(*args)  # type: ignore[misc]
    return float(extras["cost"])


def table1(
    sizes: Optional[Dict[str, int]] = None,
) -> Tuple[List[str], List[List[object]]]:
    """Table I: mixed-precision error and performance per benchmark."""
    sz = dict(TABLE1_SIZES)
    if sizes:
        sz.update(sizes)
    headers = [
        "Benchmark", "Threshold", "Actual Error", "Estimated Error",
        "Speedup",
    ]
    rows: List[List[object]] = []
    for app in (arclength, simpsons, kmeans):
        actual, est, speedup = _tune_and_validate(
            app, sz[app.NAME], app.DEFAULT_THRESHOLD
        )
        rows.append(
            [app.NAME, app.DEFAULT_THRESHOLD, actual, est,
             round(speedup, 3)]
        )
    actual, est, speedup = _hpccg_row(sz["hpccg"], hpccg.DEFAULT_THRESHOLD)
    rows.append(
        ["hpccg", hpccg.DEFAULT_THRESHOLD, actual, est, round(speedup, 3)]
    )
    return headers, rows


# -- Table II -----------------------------------------------------------------


def table2(full: bool = False) -> Tuple[List[str], List[List[object]]]:
    """Table II: CHEF-FP's analysis-time/memory improvement over ADAPT
    (geometric mean across each figure's size sweep)."""
    headers = ["Benchmark", "Time", "Memory"]
    rows: List[List[object]] = []
    for fig_id in (4, 5, 6, 7, 8):
        fig_rows = run_figure(fig_id, full=full)
        t, m = figure_improvements(fig_rows)
        name = {4: "arclength", 5: "simpsons", 6: "kmeans",
                7: "hpccg", 8: "blackscholes"}[fig_id]
        rows.append(
            [name,
             f"{t:.2f}x" if t else "-",
             f"{m:.2f}x" if m else "-"]
        )
    return headers, rows


# -- Table III ----------------------------------------------------------------

KMEANS_CONFIGS = (
    ("attributes",),
    ("clusters",),
    ("sum",),
    ("attributes", "clusters", "sum"),
)


def table3(
    npoints: int = 10_000,
) -> Tuple[List[str], List[List[object]]]:
    """Table III: k-Means error per mixed-precision configuration.

    The paper uses 1e6 data points; the default here is laptop-scaled
    (override ``npoints`` to match).
    """
    headers = [
        "Variable(s) in Lower Precision", "Actual Error",
        "Estimated Error",
    ]
    args = kmeans.make_workload(npoints)
    est = ErrorEstimator(kmeans.INSTRUMENTED, model=AdaptModel())
    report = est.execute(*args)
    rows: List[List[object]] = []
    from repro.tuning.config import matches_inlined

    for config_vars in KMEANS_CONFIGS:
        estimated = sum(
            e
            for v, e in report.per_variable.items()
            if any(matches_inlined(v, key) for key in config_vars)
        )
        validation = validate_config(
            kmeans.INSTRUMENTED,
            PrecisionConfig.demote(config_vars),
            kmeans.make_workload(npoints),
        )
        label = (
            "all 3" if len(config_vars) == 3 else config_vars[0]
        )
        rows.append([label, validation.actual_error, estimated])
    return headers, rows


# -- Table IV ------------------------------------------------------------------

TABLE4_POINTS = 1_000

_CONFIG_MAPS = {
    blackscholes.CONFIG_WITHOUT_EXP: {
        "login": "log", "sqrtin": "sqrt",
    },
    blackscholes.CONFIG_WITH_EXP: dict(
        blackscholes.APPROX_VARIABLE_MAP
    ),
}


def table4(
    npoints: int = TABLE4_POINTS,
) -> Tuple[List[str], List[List[object]]]:
    """Table IV: Black-Scholes FastApprox error and speedup.

    Row 1: approximate ``log`` and ``sqrt``; row 2: additionally the
    approximate ``exp`` — the paper's two configurations, with average /
    maximum / accumulated error over the data points, both measured and
    estimated via the Algorithm 2 custom model.
    """
    headers = [
        "Configuration",
        "act.avg", "act.max", "act.acc",
        "est.avg", "est.max", "est.acc",
        "Speedup",
    ]
    wl = blackscholes.make_workload(npoints)
    exact = compile_primal(blackscholes.bs_price.ir)
    rows: List[List[object]] = []
    for config, label in (
        (blackscholes.CONFIG_WITHOUT_EXP, "FastApprox w/o Fast exp"),
        (blackscholes.CONFIG_WITH_EXP, "FastApprox w/ Fast exp"),
    ):
        approxed = compile_primal(blackscholes.bs_price.ir, approx=config)
        estimator = ErrorEstimator(
            blackscholes.bs_price,
            model=ApproxModel(_CONFIG_MAPS[config]),
        )
        actual: List[float] = []
        estimated: List[float] = []
        for i in range(npoints):
            pa = blackscholes.point_args(wl, i)
            actual.append(abs(float(exact(*pa)) - float(approxed(*pa))))
            estimated.append(estimator.execute(*pa).total_error)
        a = np.array(actual)
        e = np.array(estimated)
        cost_exact = _counting_cost(
            blackscholes.bs_total.ir, blackscholes.make_workload(npoints)
        )
        cost_approx = _counting_cost(
            blackscholes.bs_total.ir,
            blackscholes.make_workload(npoints),
            approx=set(config),
        )
        rows.append(
            [
                label,
                a.mean(), a.max(), a.sum(),
                e.mean(), e.max(), e.sum(),
                round(cost_exact / cost_approx, 3),
            ]
        )
    return headers, rows


# -- Fig. 9 --------------------------------------------------------------------


def hpccg_sensitivity(
    nz: int = 10, max_iter: int = 60
) -> Tuple[int, Dict[str, np.ndarray], object]:
    """Fig. 9 analysis: per-iteration sensitivity of r, p, x, Ap.

    Returns ``(split_iteration, series_by_var, error_report)`` where
    each series is in forward iteration order.
    """
    track = ("r", "p", "x", "Ap")
    est = ErrorEstimator(
        hpccg.INSTRUMENTED, model=AdaptModel(), track=track
    )
    args = hpccg.make_workload(nz, max_iter=max_iter, tol=0.0)
    nrow = args[0]
    report = est.execute(*args)
    series: Dict[str, np.ndarray] = {}
    for var in track:
        tr = report.traces.get(var, [])
        # traces are in backward order: loop iterations first, then the
        # initialization assignments (for x, r, p); trim the init tail
        n_loop = max_iter * nrow
        series[var] = iteration_sensitivity(tr[:n_loop], max_iter)
    split = find_split_iteration(series, threshold=1e-8)
    return split, series, report
