"""Figures 4–8: analysis time and peak memory versus problem size.

Each figure sweeps one benchmark over sizes for three series — CHEF-FP
analysis, ADAPT analysis, and the plain application — reproducing the
bars (time) and lines (memory) of the paper's Figs. 4–8.  ADAPT's
missing top points (its cluster OOMs in Figs. 4, 7, 8) are reproduced
by the tape memory budget.

Sizes are laptop-scaled relative to the paper (documented per figure
in EXPERIMENTS.md); pass ``full=True`` for the larger sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps import arclength, blackscholes, hpccg, kmeans, simpsons
from repro.experiments.measure import (
    Measurement,
    measure_adapt,
    measure_app,
    measure_chef,
)

#: default ADAPT tape budget — produces paper-shaped OOMs at top sizes
ADAPT_BUDGET = 192 * 1024 * 1024


@dataclass
class FigureSpec:
    """One size-sweep figure."""

    fig_id: int
    name: str
    xlabel: str
    kernel: object
    workload: Callable[[int], Tuple[object, ...]]
    sizes: Sequence[int]
    full_sizes: Sequence[int]
    adapt_budget: int = ADAPT_BUDGET


FIGURES: Dict[int, FigureSpec] = {
    4: FigureSpec(
        4, "arclength", "iterations",
        arclength.INSTRUMENTED, arclength.make_workload,
        sizes=(100, 1_000, 10_000, 50_000),
        full_sizes=(100, 1_000, 10_000, 100_000, 1_000_000),
    ),
    5: FigureSpec(
        5, "simpsons", "iterations",
        simpsons.INSTRUMENTED, simpsons.make_workload,
        sizes=(100, 1_000, 10_000, 50_000),
        full_sizes=(100, 1_000, 10_000, 100_000, 1_000_000),
    ),
    6: FigureSpec(
        6, "kmeans", "data points",
        kmeans.INSTRUMENTED, kmeans.make_workload,
        sizes=(100, 1_000, 5_000),
        full_sizes=(100, 1_000, 10_000, 100_000),
    ),
    7: FigureSpec(
        7, "hpccg", "z-dimension",
        hpccg.INSTRUMENTED,
        lambda nz: hpccg.make_workload(nz, max_iter=25),
        sizes=(10, 20, 40),
        full_sizes=(10, 20, 40, 80, 160),
    ),
    8: FigureSpec(
        8, "blackscholes", "data points",
        blackscholes.INSTRUMENTED, blackscholes.make_workload,
        sizes=(100, 1_000, 5_000),
        full_sizes=(100, 1_000, 10_000, 100_000),
    ),
}


@dataclass
class FigureRow:
    """One size point of a figure (three tools)."""

    size: int
    chef: Measurement
    adapt: Measurement
    app: Measurement

    @property
    def time_improvement(self) -> Optional[float]:
        """ADAPT analysis time / CHEF-FP analysis time (Table II)."""
        if self.adapt.oom or self.chef.time_s <= 0:
            return None
        return self.adapt.time_s / self.chef.time_s

    @property
    def memory_improvement(self) -> Optional[float]:
        """ADAPT peak memory / CHEF-FP peak memory (Table II)."""
        if self.adapt.oom or self.chef.peak_bytes <= 0:
            return None
        return self.adapt.peak_bytes / self.chef.peak_bytes


def run_figure(
    fig_id: int,
    full: bool = False,
    sizes: Optional[Sequence[int]] = None,
) -> List[FigureRow]:
    """Run one figure's sweep; returns one row per size.

    :raises KeyError: for unknown figure ids.
    """
    spec = FIGURES[fig_id]
    use_sizes = sizes if sizes is not None else (
        spec.full_sizes if full else spec.sizes
    )
    rows: List[FigureRow] = []
    for size in use_sizes:
        args_chef = spec.workload(size)
        chef = measure_chef(spec.kernel, args_chef)
        args_adapt = spec.workload(size)
        adapt = measure_adapt(
            spec.kernel, args_adapt, memory_budget_bytes=spec.adapt_budget
        )
        args_app = spec.workload(size)
        app = measure_app(spec.kernel, args_app)
        rows.append(FigureRow(size=size, chef=chef, adapt=adapt, app=app))
    return rows


def figure_improvements(
    rows: Sequence[FigureRow],
) -> Tuple[Optional[float], Optional[float]]:
    """Geometric-mean time and memory improvements across a sweep
    (the aggregation behind Table II)."""
    import math

    times = [r.time_improvement for r in rows if r.time_improvement]
    mems = [r.memory_improvement for r in rows if r.memory_improvement]

    def gmean(xs: List[float]) -> Optional[float]:
        if not xs:
            return None
        return math.exp(sum(math.log(x) for x in xs) / len(xs))

    return gmean(times), gmean(mems)
