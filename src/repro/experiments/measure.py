"""Uniform time/peak-memory measurement of one analysis run.

The paper measures analysis wall-clock (Google benchmark) and peak RSS
(GNU time).  We measure wall-clock with ``perf_counter`` and Python-heap
peaks with ``tracemalloc``; tool *build* time (adjoint generation and
compilation — the analogue of compiling with Clad) is excluded from the
analysis time, exactly as compilation is excluded in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.adapt.analysis import AdaptAnalysis
from repro.adapt.tape import TapeLimits
from repro.codegen.compile import compile_primal
from repro.core.api import ErrorEstimator
from repro.core.models import AdaptModel, ErrorModel
from repro.frontend.registry import Kernel
from repro.ir import nodes as N
from repro.util.errors import AnalysisOutOfMemory
from repro.util.memory import measure_time_and_peak_memory


@dataclass
class Measurement:
    """One (tool, benchmark, size) measurement."""

    tool: str
    time_s: float
    peak_bytes: int
    value: Optional[float] = None
    total_error: Optional[float] = None
    oom: bool = False

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)


def _time_untraced(fn) -> float:
    """Wall-clock a call with tracemalloc guaranteed off.

    tracemalloc slows allocation-heavy code by large, workload-dependent
    factors (it hooks every object allocation), so timing and peak-
    memory measurement run as *separate* executions — the paper's GNU
    ``time`` likewise observes the process from outside.
    """
    import time
    import tracemalloc

    assert not tracemalloc.is_tracing(), "timing run must be untraced"
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_chef(
    k: Union[Kernel, N.Function],
    args: Sequence[object],
    model: Optional[ErrorModel] = None,
    opt_level: int = 2,
    minimal_pushes: bool = True,
) -> Measurement:
    """CHEF-FP analysis time/memory (adjoint built outside the clock)."""
    est = ErrorEstimator(
        k,
        model=model or AdaptModel(),
        opt_level=opt_level,
        minimal_pushes=minimal_pushes,
    )
    t = _time_untraced(lambda: est.execute(*args))
    report, _, peak = measure_time_and_peak_memory(
        lambda: est.execute(*args)
    )
    return Measurement(
        tool="chef-fp",
        time_s=t,
        peak_bytes=peak,
        value=report.value,
        total_error=report.total_error,
    )


def measure_adapt(
    k: Union[Kernel, N.Function],
    args: Sequence[object],
    memory_budget_bytes: int = 512 * 1024 * 1024,
) -> Measurement:
    """ADAPT analysis time/memory; OOM is reported, not raised."""
    analysis = AdaptAnalysis(
        k, limits=TapeLimits(memory_budget_bytes=memory_budget_bytes)
    )
    try:
        t = _time_untraced(lambda: analysis.execute(*args))
        report, _, peak = measure_time_and_peak_memory(
            lambda: analysis.execute(*args)
        )
    except AnalysisOutOfMemory as oom:
        return Measurement(
            tool="adapt",
            time_s=float("nan"),
            peak_bytes=oom.budget_bytes,
            oom=True,
        )
    # the tape estimate is the honest footprint (tracemalloc sees the
    # Python lists too; take the max of both)
    peak = max(peak, report.tape_bytes)
    return Measurement(
        tool="adapt",
        time_s=t,
        peak_bytes=peak,
        value=report.value,
        total_error=report.total_error,
    )


def measure_app(
    k: Union[Kernel, N.Function], args: Sequence[object]
) -> Measurement:
    """Plain application run (the 'Appl.' series of Figs. 4–8)."""
    fn = k.ir if isinstance(k, Kernel) else k
    compiled = compile_primal(fn)
    t = _time_untraced(lambda: compiled(*args))
    value, _, peak = measure_time_and_peak_memory(
        lambda: compiled(*args)
    )
    return Measurement(
        tool="app", time_s=t, peak_bytes=peak, value=float(value)  # type: ignore[arg-type]
    )
