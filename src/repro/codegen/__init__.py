"""Code generation: IR → executable Python source.

This plays the role of Clang's code emission in the paper: the adjoint
IR produced by :mod:`repro.core` (with the error-estimation statements
already inlined) is rendered to a flat Python function and compiled with
``compile``/``exec``.  Because the EE code is part of the generated
source, it benefits from the optimization pipeline (:mod:`repro.opt`)
exactly as CHEF-FP's EE code benefits from Clang's optimizer.
"""

from repro.codegen.pygen import generate_source
from repro.codegen.compile import (
    compile_primal,
    compile_raw,
    CompiledFunction,
)

__all__ = [
    "generate_source",
    "compile_primal",
    "compile_raw",
    "CompiledFunction",
]
