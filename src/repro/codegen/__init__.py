"""Code generation: IR → executable Python source.

This plays the role of Clang's code emission in the paper: the adjoint
IR produced by :mod:`repro.core` (with the error-estimation statements
already inlined) is rendered to a flat Python function and compiled with
``compile``/``exec``.  Because the EE code is part of the generated
source, it benefits from the optimization pipeline (:mod:`repro.opt`)
exactly as CHEF-FP's EE code benefits from Clang's optimizer.
"""

from repro.codegen.pygen import generate_source
from repro.codegen.compile import (
    compile_primal,
    compile_raw,
    clear_config_kernel_cache,
    config_kernel_cache_stats,
    config_lane_kernel,
    lower_config_pool,
    CompiledFunction,
    ConfigLaneKernel,
    ConfigLoweringError,
    LoweredConfigPool,
)
from repro.codegen.npgen import (
    ConfigLaneProgram,
    UnvectorizableError,
    generate_batch_source,
    generate_config_lane_source,
)

__all__ = [
    "generate_source",
    "generate_batch_source",
    "generate_config_lane_source",
    "compile_primal",
    "compile_raw",
    "clear_config_kernel_cache",
    "config_kernel_cache_stats",
    "config_lane_kernel",
    "lower_config_pool",
    "CompiledFunction",
    "ConfigLaneKernel",
    "ConfigLaneProgram",
    "ConfigLoweringError",
    "LoweredConfigPool",
    "UnvectorizableError",
]
