"""Runtime bindings for generated code.

Generated source refers to intrinsic implementations through ``_i_<name>``
globals and to precision rounding through ``_c32``/``_c16``.  Two binding
modes exist:

* **direct** — ``_i_sin`` is ``math.sin`` etc.; fastest, used by CHEF-FP
  analysis code and plain application runs (with optional FastApprox
  substitutions).
* **dispatch** — shims that accept either native floats or the ADAPT
  baseline's taping ``AdFloat``; this is what lets the ADAPT baseline run
  the *same* generated primal code through operator overloading, exactly
  like CoDiPack types flowing through templated C++ in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

import numpy as np

from repro.fp.precision import round_f16, round_f32
from repro.frontend.intrinsics import INTRINSICS


def direct_bindings(approx: Optional[Set[str]] = None) -> Dict[str, object]:
    """Globals for direct (native-float) execution.

    :param approx: intrinsic names to replace with FastApprox variants.
    """
    g: Dict[str, object] = {"__builtins__": {"range": range, "int": int,
                                             "float": float, "abs": abs,
                                             "len": len, "bool": bool}}
    approx = approx or set()
    for name, info in INTRINSICS.items():
        impl = info.impl
        if name in approx and info.approx_impl is not None:
            impl = info.approx_impl
        g[f"_i_{name}"] = impl
    g["_c32"] = round_f32
    g["_c16"] = round_f16
    return g


def _batch_fmax(x, y):
    """Elementwise mirror of the scalar ``max(x, y)``.

    NOT ``np.fmax``: that ignores NaNs, while Python's ``max`` — the
    scalar-path implementation — propagates a NaN first argument
    (``max(nan, b)`` returns ``b if b > nan else nan`` → nan).  The
    comparison+select reproduces the scalar selection exactly.
    """
    return np.where(np.asarray(y) > np.asarray(x), y, x)


def _batch_fmin(x, y):
    """Elementwise mirror of the scalar ``min(x, y)`` (see _batch_fmax)."""
    return np.where(np.asarray(y) < np.asarray(x), y, x)


#: intrinsics whose numpy equivalent is *exact* (IEEE-defined
#: operations / pure selections, bitwise-identical to the scalar
#: implementations — NaN cases included)
_NP_EXACT_INTRINSICS: Dict[str, Callable] = {
    "sqrt": np.sqrt,
    "fabs": np.fabs,
    "fmax": _batch_fmax,
    "fmin": _batch_fmin,
    "floor": np.floor,
    "ceil": np.ceil,
    "copysign": np.copysign,
}


def exactwise(impl: Callable) -> Callable:
    """Lift a scalar function to arrays by calling it per element.

    Slower than a ufunc, but **bitwise identical** to the scalar path —
    numpy's SIMD transcendentals (``np.exp`` etc.) may differ from
    ``math.exp`` by an ulp, and error models of the form
    ``x - (float)x`` amplify a one-ulp input difference catastrophically.
    The sweep engine's per-point-match guarantee rests on this wrapper.

    Works for any broadcast shape: the input-sweep engine feeds 1-D
    batches, the config-batched engine ``(K, N)`` lane grids.
    """

    def wrapped(*args):
        if not any(isinstance(a, np.ndarray) for a in args):
            return impl(*args)
        bargs = np.broadcast_arrays(*[np.asarray(a) for a in args])
        if bargs[0].ndim == 0:
            return impl(*[a.item() for a in bargs])
        shape = bargs[0].shape
        flat = [a.ravel().tolist() for a in bargs]
        out = [impl(*vals) for vals in zip(*flat)]
        return np.asarray(out, dtype=np.float64).reshape(shape)

    wrapped.__name__ = getattr(impl, "__name__", "exactwise")
    return wrapped


def _batch_c32(x):
    """Round to binary32 storage, elementwise, kept in f64."""
    if isinstance(x, np.ndarray):
        return x.astype(np.float32).astype(np.float64)
    return round_f32(float(x))


def _batch_c16(x):
    if isinstance(x, np.ndarray):
        return x.astype(np.float16).astype(np.float64)
    return round_f16(float(x))


def _batch_ci64(x):
    """C-style truncating int cast, elementwise (both ``int()`` and
    ``astype(int64)`` truncate toward zero)."""
    if isinstance(x, np.ndarray):
        return x.astype(np.int64)
    return int(x)


def _batch_step_ge(x, y):
    return np.where(np.greater_equal(x, y), 1.0, 0.0)


def batch_bindings() -> Dict[str, object]:
    """Globals for NumPy-vectorized (batch) execution.

    Exact IEEE operations bind to their ufuncs; transcendentals (and the
    bit-trick FastApprox variants) go through :func:`exactwise` so every
    lane reproduces the scalar path bit-for-bit.  The arithmetic between
    calls — the bulk of an adjoint — is plain vectorized numpy.
    """
    g: Dict[str, object] = {"__builtins__": {"range": range, "int": int,
                                             "float": float, "abs": abs,
                                             "len": len, "bool": bool}}
    for name, info in INTRINSICS.items():
        impl = _NP_EXACT_INTRINSICS.get(name)
        if name == "step_ge":
            impl = _batch_step_ge
        if impl is None:
            impl = exactwise(info.impl)
        g[f"_i_{name}"] = impl
    g["_c32"] = _batch_c32
    g["_c16"] = _batch_c16
    g["_ci64"] = _batch_ci64
    g["_where"] = np.where
    g["_land"] = np.logical_and
    g["_lor"] = np.logical_or
    g["_lnot"] = np.logical_not
    return g


class LaneSelector:
    """Per-lane rounding decision of one rounding site.

    Holds the per-lane rounding codes (0 = keep, 1 = binary32, 2 =
    binary16) as a ``(K, 1)`` column — so lane parameters broadcast
    against the batched-input axis — plus boolean masks per precision.
    ``None`` is used instead of a selector when no lane rounds at all —
    the fast path the generated code's ``_rnd`` binding short-circuits
    on.
    """

    __slots__ = ("codes", "m32", "m16", "any32", "any16")

    def __init__(self, codes: np.ndarray) -> None:
        self.codes = codes.reshape(-1, 1)
        self.m32 = self.codes == 1
        self.m16 = self.codes == 2
        self.any32 = bool(self.m32.any())
        self.any16 = bool(self.m16.any())

    @classmethod
    def from_codes(cls, codes: np.ndarray) -> Optional["LaneSelector"]:
        """Build from per-lane codes (0 = keep, 1 = f32, 2 = f16)."""
        if not codes.any():
            return None
        return cls(np.asarray(codes))


def lane_round(sel: Optional[LaneSelector], x):
    """Round ``x`` per config lane according to ``sel``.

    ``x`` is a scalar or an array broadcastable against ``(K, 1)`` lane
    masks; lanes whose selector code is 0 pass through bit-unchanged,
    the others round exactly like the scalar path's ``_c32``/``_c16``:
    the astype narrowings are IEEE round-to-nearest-even — the same
    rounding ``round_f32``/``round_f16`` perform — and the widening
    back to f64 (implicit in ``np.where``'s type promotion) is exact.
    """
    if sel is None:
        return x
    if isinstance(x, (float, int)):
        # lane-uniform value: three rounded candidates, gathered by code
        xv = float(x)
        return np.array([xv, round_f32(xv), round_f16(xv)])[sel.codes]
    xa = np.asarray(x, dtype=np.float64)
    if xa.ndim == 0:
        xv = float(xa)
        return np.array([xv, round_f32(xv), round_f16(xv)])[sel.codes]
    out = x
    if sel.any32:
        out = np.where(sel.m32, xa.astype(np.float32), out)
    if sel.any16:
        out = np.where(sel.m16, xa.astype(np.float16), out)
    return out


def config_lane_bindings(
    approx: Optional[Set[str]] = None,
) -> Dict[str, object]:
    """Globals for config-batched (precision-parameterized) execution.

    :func:`batch_bindings` plus the per-lane rounding primitive the
    config-lane code generator emits at every potential demotion site.

    :param approx: intrinsic names to run as their FastApprox variants —
        lifted through :func:`exactwise` so every lane reproduces the
        scalar approximate implementation bit for bit (mirrors
        ``direct_bindings(approx=...)``).
    """
    g = batch_bindings()
    for name in approx or ():
        info = INTRINSICS[name]
        if info.approx_impl is not None:
            g[f"_i_{name}"] = exactwise(info.approx_impl)
    g["_rnd"] = lane_round
    return g


def dispatch_bindings() -> Dict[str, object]:
    """Globals for value-type-generic execution (floats or AdFloats).

    The shims are built lazily to avoid a circular import with
    :mod:`repro.adapt`.
    """
    from repro.adapt.advalues import AdFloat

    g: Dict[str, object] = {"__builtins__": {"range": range, "int": int,
                                             "float": float, "abs": abs,
                                             "len": len, "bool": bool}}

    def make_shim(name: str, impl: Callable) -> Callable:
        def shim(*args):
            if any(isinstance(a, AdFloat) for a in args):
                return AdFloat.apply_intrinsic(name, args)
            return impl(*args)

        shim.__name__ = f"_i_{name}"
        return shim

    for name, info in INTRINSICS.items():
        g[f"_i_{name}"] = make_shim(name, info.impl)

    def c32(x):
        if isinstance(x, AdFloat):
            return x.round32()
        return round_f32(x)

    def c16(x):
        if isinstance(x, AdFloat):
            return x.round16()
        return round_f16(x)

    g["_c32"] = c32
    g["_c16"] = c16
    return g
