"""Runtime bindings for generated code.

Generated source refers to intrinsic implementations through ``_i_<name>``
globals and to precision rounding through ``_c32``/``_c16``.  Two binding
modes exist:

* **direct** — ``_i_sin`` is ``math.sin`` etc.; fastest, used by CHEF-FP
  analysis code and plain application runs (with optional FastApprox
  substitutions).
* **dispatch** — shims that accept either native floats or the ADAPT
  baseline's taping ``AdFloat``; this is what lets the ADAPT baseline run
  the *same* generated primal code through operator overloading, exactly
  like CoDiPack types flowing through templated C++ in the paper.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Set

from repro.fp.precision import round_f16, round_f32
from repro.frontend.intrinsics import INTRINSICS


def direct_bindings(approx: Optional[Set[str]] = None) -> Dict[str, object]:
    """Globals for direct (native-float) execution.

    :param approx: intrinsic names to replace with FastApprox variants.
    """
    g: Dict[str, object] = {"__builtins__": {"range": range, "int": int,
                                             "float": float, "abs": abs,
                                             "len": len, "bool": bool}}
    approx = approx or set()
    for name, info in INTRINSICS.items():
        impl = info.impl
        if name in approx and info.approx_impl is not None:
            impl = info.approx_impl
        g[f"_i_{name}"] = impl
    g["_c32"] = round_f32
    g["_c16"] = round_f16
    return g


def dispatch_bindings() -> Dict[str, object]:
    """Globals for value-type-generic execution (floats or AdFloats).

    The shims are built lazily to avoid a circular import with
    :mod:`repro.adapt`.
    """
    from repro.adapt.advalues import AdFloat

    g: Dict[str, object] = {"__builtins__": {"range": range, "int": int,
                                             "float": float, "abs": abs,
                                             "len": len, "bool": bool}}

    def make_shim(name: str, impl: Callable) -> Callable:
        def shim(*args):
            if any(isinstance(a, AdFloat) for a in args):
                return AdFloat.apply_intrinsic(name, args)
            return impl(*args)

        shim.__name__ = f"_i_{name}"
        return shim

    for name, info in INTRINSICS.items():
        g[f"_i_{name}"] = make_shim(name, info.impl)

    def c32(x):
        if isinstance(x, AdFloat):
            return x.round32()
        return round_f32(x)

    def c16(x):
        if isinstance(x, AdFloat):
            return x.round16()
        return round_f16(x)

    g["_c32"] = c32
    g["_c16"] = c16
    return g
