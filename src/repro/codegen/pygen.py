"""IR → Python source rendering.

``generate_source`` turns any IR function (primal or adjoint, including
the adjoint-only Push/Pop/TraceAppend nodes) into a flat Python function
definition.  Options:

* ``counting`` — additionally accumulate the cost model's simulated
  cycles into ``_cost`` and return it (the "performance measurement"
  substrate; see DESIGN.md),
* ``approx`` — affects only the *cost constants* baked in counting mode;
  the actual approximate implementations are chosen by the runtime
  bindings (:mod:`repro.codegen.runtime`).

Storage-precision semantics match the interpreter: stores to f32/f16
variables round through ``_c32``/``_c16``, and every f32/f16-typed
operation result is rounded — the all-f64 fast path emits no rounding
calls at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.interp.cost_model import (
    CostModel,
    DEFAULT_COST_MODEL,
    expr_cost,
    store_cost,
)
from repro.ir import nodes as N
from repro.ir.types import DType
from repro.ir.visitor import walk_stmts


class _Gen:
    def __init__(
        self,
        fn: N.Function,
        counting: bool,
        cost_model: CostModel,
        approx: Optional[Set[str]],
    ) -> None:
        self.fn = fn
        self.counting = counting
        self.cm = cost_model
        self.approx = approx or set()
        self.lines: List[str] = []
        self.indent = 1
        self.stacks: List[str] = []
        self.traces: List[str] = []

    # -- emission helpers ---------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def charge(self, cycles: float) -> None:
        if self.counting and cycles > 0:
            self.emit(f"_cost += {cycles!r}")

    # -- expressions ----------------------------------------------------------
    def expr(self, e: N.Expr) -> str:
        text = self._expr_raw(e)
        if (
            isinstance(e, (N.BinOp, N.Call))
            and e.dtype in (DType.F32, DType.F16)
            and not (isinstance(e, N.BinOp) and (e.op in N.CMPOPS or e.op in N.BOOLOPS))
        ):
            fn = "_c32" if e.dtype is DType.F32 else "_c16"
            return f"{fn}({text})"
        return text

    def _expr_raw(self, e: N.Expr) -> str:
        if isinstance(e, N.Const):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, N.Name):
            return e.id
        if isinstance(e, N.Index):
            return f"{e.base}[{self.expr(e.index)}]"
        if isinstance(e, N.BinOp):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, N.UnaryOp):
            op = "-" if e.op == "-" else "not "
            return f"({op}{self.expr(e.operand)})"
        if isinstance(e, N.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"_i_{e.fn}({args})"
        if isinstance(e, N.Cast):
            inner = self.expr(e.operand)
            if e.to is DType.F32:
                return f"_c32({inner})"
            if e.to is DType.F16:
                return f"_c16({inner})"
            if e.to is DType.I64:
                return f"int({inner})"
            return inner  # F64/B1: values are already held wide
        raise TypeError(type(e).__name__)

    def _store(self, target: N.LValue, value: N.Expr) -> None:
        text = self.expr(value)
        tdt = target.dtype or DType.F64
        vdt = value.dtype or DType.F64
        if tdt in (DType.F32, DType.F16) and vdt is not tdt:
            text = f"_c32({text})" if tdt is DType.F32 else f"_c16({text})"
        if isinstance(target, N.Name):
            self.emit(f"{target.id} = {text}")
        else:
            self.emit(f"{target.base}[{self.expr(target.index)}] = {text}")
        if self.counting:
            self.charge(
                expr_cost(value, self.cm, self.approx)
                + store_cost(target, value, self.cm)
            )

    # -- statements -------------------------------------------------------------
    def body(self, stmts: List[N.Stmt]) -> None:
        if not stmts:
            self.emit("pass")
            return
        for s in stmts:
            self.stmt(s)

    def stmt(self, s: N.Stmt) -> None:
        if isinstance(s, N.VarDecl):
            if s.init is None:
                self.emit(f"{s.name} = 0.0")
                return
            tgt = N.Name(s.name)
            tgt.dtype = s.dtype
            self._store(tgt, s.init)
        elif isinstance(s, N.Assign):
            self._store(s.target, s.value)
        elif isinstance(s, N.For):
            lo, hi, step = (
                self.expr(s.lo),
                self.expr(s.hi),
                self.expr(s.step),
            )
            self.emit(f"for {s.var} in range({lo}, {hi}, {step}):")
            self.indent += 1
            self.charge(1.0)  # loop bookkeeping per iteration
            self.body(s.body)
            self.indent -= 1
        elif isinstance(s, N.While):
            self.emit(f"while {self.expr(s.cond)}:")
            self.indent += 1
            self.charge(
                1.0 + (expr_cost(s.cond, self.cm, self.approx) if self.counting else 0.0)
            )
            self.body(s.body)
            self.indent -= 1
        elif isinstance(s, N.If):
            if self.counting:
                self.charge(expr_cost(s.cond, self.cm, self.approx))
            self.emit(f"if {self.expr(s.cond)}:")
            self.indent += 1
            self.body(s.then)
            self.indent -= 1
            if s.orelse:
                self.emit("else:")
                self.indent += 1
                self.body(s.orelse)
                self.indent -= 1
        elif isinstance(s, N.Break):
            self.emit("break")
        elif isinstance(s, N.Return):
            self._emit_return([self.expr(s.value)])
        elif isinstance(s, N.ReturnTuple):
            self._emit_return([self.expr(v) for v in s.values])
        elif isinstance(s, N.ExprStmt):
            self.emit(self.expr(s.value))
        elif isinstance(s, N.Push):
            self.emit(f"_stk_{s.stack}.append({self.expr(s.value)})")
        elif isinstance(s, N.Pop):
            if isinstance(s.target, N.Name):
                self.emit(f"{s.target.id} = _stk_{s.stack}.pop()")
            else:
                self.emit(
                    f"{s.target.base}[{self.expr(s.target.index)}] = "
                    f"_stk_{s.stack}.pop()"
                )
        elif isinstance(s, N.PopDiscard):
            self.emit(f"_stk_{s.stack}.pop()")
        elif isinstance(s, N.TraceAppend):
            self.emit(f"_tr_{s.trace}.append({self.expr(s.value)})")
        else:
            raise TypeError(type(s).__name__)

    def _emit_return(self, values: List[str]) -> None:
        extras = [f"_tr_{t}" for t in self.traces]
        if self.counting:
            extras.append("_cost")
        parts = values + extras
        if len(parts) == 1:
            self.emit(f"return {parts[0]}")
        else:
            self.emit(f"return ({', '.join(parts)})")

    # -- function -----------------------------------------------------------------
    def generate(self) -> str:
        fn = self.fn
        for s in walk_stmts(fn.body):
            if isinstance(s, (N.Push,)) and s.stack not in self.stacks:
                self.stacks.append(s.stack)
            if (
                isinstance(s, (N.Pop, N.PopDiscard))
                and s.stack not in self.stacks
            ):
                self.stacks.append(s.stack)
            if isinstance(s, N.TraceAppend) and s.trace not in self.traces:
                self.traces.append(s.trace)
        params = ", ".join(p.name for p in fn.params)
        header = f"def {fn.name}({params}):"
        for stack in self.stacks:
            self.emit(f"_stk_{stack} = []")
        for trace in self.traces:
            self.emit(f"_tr_{trace} = []")
        if self.counting:
            self.emit("_cost = 0.0")
        self.body(fn.body)
        if not fn.body or not isinstance(
            fn.body[-1], (N.Return, N.ReturnTuple)
        ):
            self._emit_return(["None"])
        return header + "\n" + "\n".join(self.lines)


def generate_source(
    fn: N.Function,
    counting: bool = False,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> str:
    """Render ``fn`` as Python source.

    The generated function's extra return slots (in order): declared
    sensitivity traces, then ``_cost`` if ``counting`` — callers use
    :func:`extra_return_layout` to unpack.
    """
    return _Gen(fn, counting, cost_model, approx).generate()


def extra_return_layout(
    fn: N.Function, counting: bool = False
) -> Dict[str, object]:
    """Describe the extra return slots appended by :func:`generate_source`."""
    traces: List[str] = []
    for s in walk_stmts(fn.body):
        if isinstance(s, N.TraceAppend) and s.trace not in traces:
            traces.append(s.trace)
    return {"traces": traces, "counting": counting}
