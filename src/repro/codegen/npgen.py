"""IR → NumPy-vectorized (batch) Python source rendering.

``generate_batch_source`` turns an IR function — in practice the
error-estimating adjoint — into a Python function that evaluates **N
input points at once**: designated scalar parameters arrive as length-N
``numpy`` arrays and every operation becomes an array-at-a-time
elementwise operation.  This is the execution backend of the input-sweep
engine (``repro.sweep``): one pass through the generated code replaces N
calls of the scalar adjoint.

Semantics: per lane, the vectorized function performs exactly the
operations the scalar function would — data-dependent branches are
*if-converted*: both branch bodies execute on the full batch and every
store inside a branch becomes a masked blend ``t = where(m, value, t)``.
Inactive lanes therefore compute (and discard) garbage; the caller runs
the code under ``numpy.errstate(ignore)`` for that reason.

Tape discipline: the reverse-mode adjoint pairs every ``Push`` with a
``Pop`` in exact reverse order along any *scalar* execution path.  Under
if-conversion both branches run, so the pairing is preserved by two
rules:

* pushes and pops execute *unconditionally* (only the popped value's
  store is masked), keeping the stack depth lane-independent;
* an ``if``/``else`` in the *backward* sweep (identified by containing
  ``Pop`` nodes) renders its **else body first** — the forward sweep
  pushed then-branch values before else-branch values, so the LIFO
  order of the merged stream pops else before then.

What cannot be vectorized raises :class:`UnvectorizableError` and the
sweep engine falls back to a scalar loop: array parameters, loops whose
trip counts depend on batched data (data-dependent ``while``/``break``),
sensitivity traces under a mask, and user-bound scalar callables
(external error models).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType
from repro.ir.visitor import walk_expr, walk_stmts
from repro.util.errors import ReproError


class UnvectorizableError(ReproError):
    """The function cannot be compiled to batch (array-at-a-time) form.

    Callers are expected to catch this and fall back to a scalar loop —
    it signals a structural limitation, not a bug.
    """


# --------------------------------------------------------------------------
# Taint analysis: which names may hold per-lane (batched) values?
# --------------------------------------------------------------------------


def _reads(e: N.Expr) -> Iterable[str]:
    for node in walk_expr(e):
        if isinstance(node, N.Name):
            yield node.id
        elif isinstance(node, N.Index):
            yield node.base


def _taint_analysis(
    fn: N.Function, batched: Set[str]
) -> Tuple[Set[str], Set[str]]:
    """Fixpoint taint propagation from batched parameters.

    Returns ``(tainted_names, tainted_stacks)``.  A name is tainted when
    its value may differ across lanes; a stack is tainted when any value
    pushed onto it may.  Assignments under a tainted branch condition
    taint their targets too (the blend mixes lanes), as do pops from a
    tainted stack.
    """
    tainted: Set[str] = set(batched)
    stacks: Set[str] = set()
    changed = True

    def expr_tainted(e: N.Expr) -> bool:
        return any(r in tainted for r in _reads(e))

    def taint(name: str) -> None:
        nonlocal changed
        if name not in tainted:
            tainted.add(name)
            changed = True

    def visit(stmts: Sequence[N.Stmt], masked: bool) -> None:
        nonlocal changed
        for s in stmts:
            if isinstance(s, N.Assign):
                if isinstance(s.target, N.Name) and (
                    masked or expr_tainted(s.value)
                ):
                    taint(s.target.id)
            elif isinstance(s, N.VarDecl):
                if s.init is not None and (masked or expr_tainted(s.init)):
                    taint(s.name)
            elif isinstance(s, N.Pop):
                if isinstance(s.target, N.Name) and (
                    masked or s.stack in stacks
                ):
                    taint(s.target.id)
            elif isinstance(s, N.Push):
                if (masked or expr_tainted(s.value)) and s.stack not in stacks:
                    stacks.add(s.stack)
                    changed = True
            elif isinstance(s, N.If):
                inner = masked or expr_tainted(s.cond)
                visit(s.then, inner)
                visit(s.orelse, inner)
            elif isinstance(s, N.For):
                visit(s.body, masked)
            elif isinstance(s, N.While):
                visit(s.body, masked)

    while changed:
        changed = False
        visit(fn.body, False)
    return tainted, stacks


def _subtree_has(stmts: Sequence[N.Stmt], kinds: tuple) -> bool:
    return any(isinstance(s, kinds) for s in walk_stmts(stmts))


# --------------------------------------------------------------------------
# Generation
# --------------------------------------------------------------------------


class _BatchGen:
    def __init__(self, fn: N.Function, batched: Set[str]) -> None:
        for p in fn.params:
            if isinstance(p.type, ArrayType):
                raise UnvectorizableError(
                    f"{fn.name}: array parameter {p.name!r} is not "
                    "supported by the batch backend"
                )
        unknown = batched - {p.name for p in fn.params}
        if unknown:
            raise UnvectorizableError(
                f"{fn.name}: batched names are not parameters: "
                f"{sorted(unknown)}"
            )
        self.fn = fn
        self.tainted, self.tainted_stacks = _taint_analysis(fn, batched)
        self.lines: List[str] = []
        self.indent = 1
        self.stacks: List[str] = []
        self.traces: List[str] = []
        #: name of the active lane-mask variable (None = all lanes)
        self.mask: Optional[str] = None
        self._fresh_counter = 0

    # -- helpers ------------------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def fresh(self, prefix: str) -> str:
        self._fresh_counter += 1
        return f"{prefix}{self._fresh_counter}"

    def expr_tainted(self, e: N.Expr) -> bool:
        return any(r in self.tainted for r in _reads(e))

    # -- expressions --------------------------------------------------------
    def expr(self, e: N.Expr) -> str:
        text = self._expr_raw(e)
        if (
            isinstance(e, (N.BinOp, N.Call))
            and e.dtype in (DType.F32, DType.F16)
            and not (
                isinstance(e, N.BinOp)
                and (e.op in N.CMPOPS or e.op in N.BOOLOPS)
            )
        ):
            fn = "_c32" if e.dtype is DType.F32 else "_c16"
            return f"{fn}({text})"
        return text

    def _expr_raw(self, e: N.Expr) -> str:
        if isinstance(e, N.Const):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, N.Name):
            return e.id
        if isinstance(e, N.Index):
            raise UnvectorizableError(
                f"{self.fn.name}: array indexing is not supported by the "
                "batch backend"
            )
        if isinstance(e, N.BinOp):
            if e.op in N.BOOLOPS:
                fn = "_land" if e.op == "and" else "_lor"
                return f"{fn}({self.expr(e.left)}, {self.expr(e.right)})"
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, N.UnaryOp):
            if e.op == "-":
                return f"(-{self.expr(e.operand)})"
            return f"_lnot({self.expr(e.operand)})"
        if isinstance(e, N.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"_i_{e.fn}({args})"
        if isinstance(e, N.Cast):
            inner = self.expr(e.operand)
            if e.to is DType.F32:
                return f"_c32({inner})"
            if e.to is DType.F16:
                return f"_c16({inner})"
            if e.to is DType.I64:
                return f"_ci64({inner})"
            return inner  # F64/B1: values are already held wide
        raise TypeError(type(e).__name__)

    # -- stores -------------------------------------------------------------
    def _store(self, target: N.LValue, value: N.Expr) -> None:
        if not isinstance(target, N.Name):
            raise UnvectorizableError(
                f"{self.fn.name}: array-element store is not supported by "
                "the batch backend"
            )
        text = self.expr(value)
        tdt = target.dtype or DType.F64
        vdt = value.dtype or DType.F64
        if tdt in (DType.F32, DType.F16) and vdt is not tdt:
            text = f"_c32({text})" if tdt is DType.F32 else f"_c16({text})"
        if self.mask is None:
            self.emit(f"{target.id} = {text}")
        else:
            self.emit(
                f"{target.id} = _where({self.mask}, {text}, {target.id})"
            )

    # -- statements ---------------------------------------------------------
    def body(self, stmts: Sequence[N.Stmt]) -> None:
        if not stmts:
            self.emit("pass")
            return
        for s in stmts:
            self.stmt(s)

    def masked_body(self, stmts: Sequence[N.Stmt]) -> None:
        """Like :meth:`body` but emits nothing for an empty block (masked
        regions are flat — no Python suite needs a ``pass``)."""
        for s in stmts:
            self.stmt(s)

    def stmt(self, s: N.Stmt) -> None:
        if isinstance(s, N.VarDecl):
            if s.init is None:
                self.emit(f"{s.name} = 0.0")
                return
            tgt = N.Name(s.name)
            tgt.dtype = s.dtype
            # a declaration has no prior value to preserve, so it is
            # never blended — even under a mask (CSE may declare temps
            # inside branches); inactive lanes' values are only ever
            # read by masked consumers
            saved, self.mask = self.mask, None
            self._store(tgt, s.init)
            self.mask = saved
        elif isinstance(s, N.Assign):
            self._store(s.target, s.value)
        elif isinstance(s, N.If):
            self._if(s)
        elif isinstance(s, N.For):
            self._for(s)
        elif isinstance(s, N.While):
            self._while(s)
        elif isinstance(s, N.Break):
            if self.mask is not None:
                raise UnvectorizableError(
                    f"{self.fn.name}: 'break' under a data-dependent "
                    "branch cannot be vectorized"
                )
            self.emit("break")
        elif isinstance(s, N.Return):
            self._emit_return([self.expr(s.value)])
        elif isinstance(s, N.ReturnTuple):
            self._emit_return([self.expr(v) for v in s.values])
        elif isinstance(s, N.ExprStmt):
            self.emit(self.expr(s.value))
        elif isinstance(s, N.Push):
            # unconditional even under a mask: stack depth must be
            # lane-independent; inactive lanes' values are discarded by
            # the matching masked pop
            self.emit(f"_stk_{s.stack}.append({self.expr(s.value)})")
        elif isinstance(s, N.Pop):
            if not isinstance(s.target, N.Name):
                raise UnvectorizableError(
                    f"{self.fn.name}: pop into array element is not "
                    "supported by the batch backend"
                )
            if self.mask is None:
                self.emit(f"{s.target.id} = _stk_{s.stack}.pop()")
            else:
                self.emit(
                    f"{s.target.id} = _where({self.mask}, "
                    f"_stk_{s.stack}.pop(), {s.target.id})"
                )
        elif isinstance(s, N.PopDiscard):
            self.emit(f"_stk_{s.stack}.pop()")
        elif isinstance(s, N.TraceAppend):
            if self.mask is not None:
                raise UnvectorizableError(
                    f"{self.fn.name}: sensitivity trace under a "
                    "data-dependent branch cannot be vectorized"
                )
            self.emit(f"_tr_{s.trace}.append({self.expr(s.value)})")
        else:
            raise TypeError(type(s).__name__)

    # -- control flow -------------------------------------------------------
    def _if(self, s: N.If) -> None:
        if not self.expr_tainted(s.cond):
            # lane-uniform condition: a real Python branch — all lanes
            # agree, so scalar push/pop pairing applies unchanged
            self.emit(f"if {self.expr(s.cond)}:")
            self.indent += 1
            self.body(s.then)
            self.indent -= 1
            if s.orelse:
                self.emit("else:")
                self.indent += 1
                self.body(s.orelse)
                self.indent -= 1
            return

        has_pop = _subtree_has([s], (N.Pop, N.PopDiscard))
        has_push = _subtree_has([s], (N.Push,))
        if has_pop and has_push:
            raise UnvectorizableError(
                f"{self.fn.name}: branch mixes tape pushes and pops"
            )
        cond = self.fresh("_bc")
        self.emit(f"{cond} = {self.expr(s.cond)}")
        parent = self.mask
        if parent is None:
            then_mask = cond
        else:
            then_mask = self.fresh("_bm")
            self.emit(f"{then_mask} = _land({parent}, {cond})")
        blocks: List[Tuple[str, Sequence[N.Stmt]]] = [(then_mask, s.then)]
        if s.orelse:
            else_mask = self.fresh("_bm")
            if parent is None:
                self.emit(f"{else_mask} = _lnot({cond})")
            else:
                self.emit(f"{else_mask} = _land({parent}, _lnot({cond}))")
            blocks.append((else_mask, s.orelse))
        if has_pop:
            # backward-sweep branch: the forward sweep pushed then-values
            # before else-values, so LIFO pops the else body first
            blocks.reverse()
        for mask, block in blocks:
            self.mask = mask
            self.masked_body(block)
        self.mask = parent

    def _for(self, s: N.For) -> None:
        if self.mask is not None:
            raise UnvectorizableError(
                f"{self.fn.name}: loop under a data-dependent branch "
                "cannot be vectorized"
            )
        for e in (s.lo, s.hi, s.step):
            if self.expr_tainted(e):
                raise UnvectorizableError(
                    f"{self.fn.name}: loop bound depends on batched data"
                )
        lo, hi, step = self.expr(s.lo), self.expr(s.hi), self.expr(s.step)
        self.emit(f"for {s.var} in range({lo}, {hi}, {step}):")
        self.indent += 1
        self.body(s.body)
        self.indent -= 1

    def _while(self, s: N.While) -> None:
        if self.mask is not None or self.expr_tainted(s.cond):
            raise UnvectorizableError(
                f"{self.fn.name}: while-loop condition depends on "
                "batched data"
            )
        self.emit(f"while {self.expr(s.cond)}:")
        self.indent += 1
        self.body(s.body)
        self.indent -= 1

    # -- function -----------------------------------------------------------
    def _emit_return(self, values: List[str]) -> None:
        if self.mask is not None:
            raise UnvectorizableError(
                f"{self.fn.name}: return under a data-dependent branch"
            )
        parts = values + [f"_tr_{t}" for t in self.traces]
        if len(parts) == 1:
            self.emit(f"return {parts[0]}")
        else:
            self.emit(f"return ({', '.join(parts)})")

    def generate(self) -> str:
        fn = self.fn
        for s in walk_stmts(fn.body):
            if isinstance(s, N.Push) and s.stack not in self.stacks:
                self.stacks.append(s.stack)
            if (
                isinstance(s, (N.Pop, N.PopDiscard))
                and s.stack not in self.stacks
            ):
                self.stacks.append(s.stack)
            if isinstance(s, N.TraceAppend) and s.trace not in self.traces:
                self.traces.append(s.trace)
        params = ", ".join(p.name for p in fn.params)
        header = f"def {fn.name}({params}):"
        for stack in self.stacks:
            self.emit(f"_stk_{stack} = []")
        for trace in self.traces:
            self.emit(f"_tr_{trace} = []")
        self.body(fn.body)
        if not fn.body or not isinstance(
            fn.body[-1], (N.Return, N.ReturnTuple)
        ):
            self._emit_return(["None"])
        return header + "\n" + "\n".join(self.lines)


def generate_batch_source(fn: N.Function, batched: Set[str]) -> str:
    """Render ``fn`` as NumPy-vectorized batch Python source.

    :param batched: names of scalar parameters that arrive as length-N
        arrays; all other parameters are lane-uniform scalars.
    :raises UnvectorizableError: if the function's structure cannot be
        executed array-at-a-time (see module docstring) — callers fall
        back to a scalar loop.
    """
    return _BatchGen(fn, set(batched)).generate()
