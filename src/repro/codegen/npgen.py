"""IR → NumPy-vectorized (batch) Python source rendering.

``generate_batch_source`` turns an IR function — in practice the
error-estimating adjoint — into a Python function that evaluates **N
input points at once**: designated scalar parameters arrive as length-N
``numpy`` arrays and every operation becomes an array-at-a-time
elementwise operation.  This is the execution backend of the input-sweep
engine (``repro.sweep``): one pass through the generated code replaces N
calls of the scalar adjoint.

Semantics: per lane, the vectorized function performs exactly the
operations the scalar function would — data-dependent branches are
*if-converted*: both branch bodies execute on the full batch and every
store inside a branch becomes a masked blend ``t = where(m, value, t)``.
Inactive lanes therefore compute (and discard) garbage; the caller runs
the code under ``numpy.errstate(ignore)`` for that reason.

Tape discipline: the reverse-mode adjoint pairs every ``Push`` with a
``Pop`` in exact reverse order along any *scalar* execution path.  Under
if-conversion both branches run, so the pairing is preserved by two
rules:

* pushes and pops execute *unconditionally* (only the popped value's
  store is masked), keeping the stack depth lane-independent;
* an ``if``/``else`` in the *backward* sweep (identified by containing
  ``Pop`` nodes) renders its **else body first** — the forward sweep
  pushed then-branch values before else-branch values, so the LIFO
  order of the merged stream pops else before then.

What cannot be vectorized raises :class:`UnvectorizableError` and the
sweep engine falls back to a scalar loop: array parameters, loops whose
trip counts depend on batched data (data-dependent ``while``/``break``),
sensitivity traces under a mask, and user-bound scalar callables
(external error models).

A second generator builds on the same machinery for the **config
axis**: :func:`generate_config_lane_source` renders a kernel once with
every potential demotion point as a runtime rounding site and every
dtype-dependent cycle charge as a runtime lane vector, so K precision
configurations evaluate in one execution — see the section comment
below and :mod:`repro.codegen.compile` for pool lowering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType
from repro.ir.visitor import walk_expr, walk_stmts
from repro.util.errors import ReproError


class UnvectorizableError(ReproError):
    """The function cannot be compiled to batch (array-at-a-time) form.

    Callers are expected to catch this and fall back to a scalar loop —
    it signals a structural limitation, not a bug.
    """


# --------------------------------------------------------------------------
# Taint analysis: which names may hold per-lane (batched) values?
# --------------------------------------------------------------------------


def _reads(e: N.Expr) -> Iterable[str]:
    for node in walk_expr(e):
        if isinstance(node, N.Name):
            yield node.id
        elif isinstance(node, N.Index):
            yield node.base


def _taint_analysis(
    fn: N.Function, batched: Set[str]
) -> Tuple[Set[str], Set[str]]:
    """Fixpoint taint propagation from batched parameters.

    Returns ``(tainted_names, tainted_stacks)``.  A name is tainted when
    its value may differ across lanes; a stack is tainted when any value
    pushed onto it may.  Assignments under a tainted branch condition
    taint their targets too (the blend mixes lanes), as do pops from a
    tainted stack.
    """
    tainted: Set[str] = set(batched)
    stacks: Set[str] = set()
    changed = True

    def expr_tainted(e: N.Expr) -> bool:
        return any(r in tainted for r in _reads(e))

    def taint(name: str) -> None:
        nonlocal changed
        if name not in tainted:
            tainted.add(name)
            changed = True

    def visit(stmts: Sequence[N.Stmt], masked: bool) -> None:
        nonlocal changed
        for s in stmts:
            if isinstance(s, N.Assign):
                if isinstance(s.target, N.Name) and (
                    masked or expr_tainted(s.value)
                ):
                    taint(s.target.id)
                elif isinstance(s.target, N.Index) and (
                    masked
                    or expr_tainted(s.value)
                    or expr_tainted(s.target.index)
                ):
                    # a lane-variable store into an array element makes
                    # every later read of that array lane-variable too
                    taint(s.target.base)
            elif isinstance(s, N.VarDecl):
                if s.init is not None and (masked or expr_tainted(s.init)):
                    taint(s.name)
            elif isinstance(s, N.Pop):
                if isinstance(s.target, N.Name) and (
                    masked or s.stack in stacks
                ):
                    taint(s.target.id)
            elif isinstance(s, N.Push):
                if (masked or expr_tainted(s.value)) and s.stack not in stacks:
                    stacks.add(s.stack)
                    changed = True
            elif isinstance(s, N.If):
                inner = masked or expr_tainted(s.cond)
                visit(s.then, inner)
                visit(s.orelse, inner)
            elif isinstance(s, N.For):
                visit(s.body, masked)
            elif isinstance(s, N.While):
                visit(s.body, masked)

    while changed:
        changed = False
        visit(fn.body, False)
    return tainted, stacks


def _subtree_has(stmts: Sequence[N.Stmt], kinds: tuple) -> bool:
    return any(isinstance(s, kinds) for s in walk_stmts(stmts))


# --------------------------------------------------------------------------
# Generation
# --------------------------------------------------------------------------


class _BatchGen:
    def __init__(
        self,
        fn: N.Function,
        batched: Set[str],
        extra_taint: Set[str] = frozenset(),
        allow_arrays: bool = False,
    ) -> None:
        if not allow_arrays:
            for p in fn.params:
                if isinstance(p.type, ArrayType):
                    raise UnvectorizableError(
                        f"{fn.name}: array parameter {p.name!r} is not "
                        "supported by the batch backend"
                    )
        unknown = batched - {p.name for p in fn.params}
        if unknown:
            raise UnvectorizableError(
                f"{fn.name}: batched names are not parameters: "
                f"{sorted(unknown)}"
            )
        self.fn = fn
        self.allow_arrays = allow_arrays
        self.tainted, self.tainted_stacks = _taint_analysis(
            fn, set(batched) | set(extra_taint)
        )
        self.lines: List[str] = []
        self.indent = 1
        self.stacks: List[str] = []
        self.traces: List[str] = []
        #: name of the active lane-mask variable (None = all lanes)
        self.mask: Optional[str] = None
        self._fresh_counter = 0

    # -- helpers ------------------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def fresh(self, prefix: str) -> str:
        self._fresh_counter += 1
        return f"{prefix}{self._fresh_counter}"

    def expr_tainted(self, e: N.Expr) -> bool:
        return any(r in self.tainted for r in _reads(e))

    # -- expressions --------------------------------------------------------
    def expr(self, e: N.Expr) -> str:
        text = self._expr_raw(e)
        if (
            isinstance(e, (N.BinOp, N.Call))
            and e.dtype in (DType.F32, DType.F16)
            and not (
                isinstance(e, N.BinOp)
                and (e.op in N.CMPOPS or e.op in N.BOOLOPS)
            )
        ):
            fn = "_c32" if e.dtype is DType.F32 else "_c16"
            return f"{fn}({text})"
        return text

    def _expr_raw(self, e: N.Expr) -> str:
        if isinstance(e, N.Const):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            return repr(e.value)
        if isinstance(e, N.Name):
            return e.id
        if isinstance(e, N.Index):
            raise UnvectorizableError(
                f"{self.fn.name}: array indexing is not supported by the "
                "batch backend"
            )
        if isinstance(e, N.BinOp):
            if e.op in N.BOOLOPS:
                fn = "_land" if e.op == "and" else "_lor"
                return f"{fn}({self.expr(e.left)}, {self.expr(e.right)})"
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, N.UnaryOp):
            if e.op == "-":
                return f"(-{self.expr(e.operand)})"
            return f"_lnot({self.expr(e.operand)})"
        if isinstance(e, N.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"_i_{e.fn}({args})"
        if isinstance(e, N.Cast):
            inner = self.expr(e.operand)
            if e.to is DType.F32:
                return f"_c32({inner})"
            if e.to is DType.F16:
                return f"_c16({inner})"
            if e.to is DType.I64:
                return f"_ci64({inner})"
            return inner  # F64/B1: values are already held wide
        raise TypeError(type(e).__name__)

    # -- stores -------------------------------------------------------------
    def _store(self, target: N.LValue, value: N.Expr) -> None:
        if not isinstance(target, N.Name):
            raise UnvectorizableError(
                f"{self.fn.name}: array-element store is not supported by "
                "the batch backend"
            )
        text = self.expr(value)
        tdt = target.dtype or DType.F64
        vdt = value.dtype or DType.F64
        if tdt in (DType.F32, DType.F16) and vdt is not tdt:
            text = f"_c32({text})" if tdt is DType.F32 else f"_c16({text})"
        if self.mask is None:
            self.emit(f"{target.id} = {text}")
        else:
            self.emit(
                f"{target.id} = _where({self.mask}, {text}, {target.id})"
            )

    # -- statements ---------------------------------------------------------
    def body(self, stmts: Sequence[N.Stmt]) -> None:
        if not stmts:
            self.emit("pass")
            return
        for s in stmts:
            self.stmt(s)

    def masked_body(self, stmts: Sequence[N.Stmt]) -> None:
        """Like :meth:`body` but emits nothing for an empty block (masked
        regions are flat — no Python suite needs a ``pass``)."""
        for s in stmts:
            self.stmt(s)

    def stmt(self, s: N.Stmt) -> None:
        if isinstance(s, N.VarDecl):
            if s.init is None:
                self.emit(f"{s.name} = 0.0")
                return
            tgt = N.Name(s.name)
            tgt.dtype = s.dtype
            # a declaration has no prior value to preserve, so it is
            # never blended — even under a mask (CSE may declare temps
            # inside branches); inactive lanes' values are only ever
            # read by masked consumers
            saved, self.mask = self.mask, None
            self._store(tgt, s.init)
            self.mask = saved
        elif isinstance(s, N.Assign):
            self._store(s.target, s.value)
        elif isinstance(s, N.If):
            self._if(s)
        elif isinstance(s, N.For):
            self._for(s)
        elif isinstance(s, N.While):
            self._while(s)
        elif isinstance(s, N.Break):
            if self.mask is not None:
                raise UnvectorizableError(
                    f"{self.fn.name}: 'break' under a data-dependent "
                    "branch cannot be vectorized"
                )
            self.emit("break")
        elif isinstance(s, N.Return):
            self._emit_return([self.expr(s.value)])
        elif isinstance(s, N.ReturnTuple):
            self._emit_return([self.expr(v) for v in s.values])
        elif isinstance(s, N.ExprStmt):
            self.emit(self.expr(s.value))
        elif isinstance(s, N.Push):
            # unconditional even under a mask: stack depth must be
            # lane-independent; inactive lanes' values are discarded by
            # the matching masked pop
            self.emit(f"_stk_{s.stack}.append({self.expr(s.value)})")
        elif isinstance(s, N.Pop):
            if not isinstance(s.target, N.Name):
                raise UnvectorizableError(
                    f"{self.fn.name}: pop into array element is not "
                    "supported by the batch backend"
                )
            if self.mask is None:
                self.emit(f"{s.target.id} = _stk_{s.stack}.pop()")
            else:
                self.emit(
                    f"{s.target.id} = _where({self.mask}, "
                    f"_stk_{s.stack}.pop(), {s.target.id})"
                )
        elif isinstance(s, N.PopDiscard):
            self.emit(f"_stk_{s.stack}.pop()")
        elif isinstance(s, N.TraceAppend):
            if self.mask is not None:
                raise UnvectorizableError(
                    f"{self.fn.name}: sensitivity trace under a "
                    "data-dependent branch cannot be vectorized"
                )
            self.emit(f"_tr_{s.trace}.append({self.expr(s.value)})")
        else:
            raise TypeError(type(s).__name__)

    # -- control flow -------------------------------------------------------
    def _if(self, s: N.If) -> None:
        if not self.expr_tainted(s.cond):
            # lane-uniform condition: a real Python branch — all lanes
            # agree, so scalar push/pop pairing applies unchanged
            self.emit(f"if {self.expr(s.cond)}:")
            self.indent += 1
            self.body(s.then)
            self.indent -= 1
            if s.orelse:
                self.emit("else:")
                self.indent += 1
                self.body(s.orelse)
                self.indent -= 1
            return

        has_pop = _subtree_has([s], (N.Pop, N.PopDiscard))
        has_push = _subtree_has([s], (N.Push,))
        if has_pop and has_push:
            raise UnvectorizableError(
                f"{self.fn.name}: branch mixes tape pushes and pops"
            )
        cond = self.fresh("_bc")
        self.emit(f"{cond} = {self.expr(s.cond)}")
        parent = self.mask
        if parent is None:
            then_mask = cond
        else:
            then_mask = self.fresh("_bm")
            self.emit(f"{then_mask} = _land({parent}, {cond})")
        blocks: List[Tuple[str, Sequence[N.Stmt]]] = [(then_mask, s.then)]
        if s.orelse:
            else_mask = self.fresh("_bm")
            if parent is None:
                self.emit(f"{else_mask} = _lnot({cond})")
            else:
                self.emit(f"{else_mask} = _land({parent}, _lnot({cond}))")
            blocks.append((else_mask, s.orelse))
        if has_pop:
            # backward-sweep branch: the forward sweep pushed then-values
            # before else-values, so LIFO pops the else body first
            blocks.reverse()
        for mask, block in blocks:
            self.mask = mask
            self.masked_body(block)
        self.mask = parent

    def _for(self, s: N.For) -> None:
        if self.mask is not None:
            raise UnvectorizableError(
                f"{self.fn.name}: loop under a data-dependent branch "
                "cannot be vectorized"
            )
        for e in (s.lo, s.hi, s.step):
            if self.expr_tainted(e):
                raise UnvectorizableError(
                    f"{self.fn.name}: loop bound depends on batched data"
                )
        lo, hi, step = self.expr(s.lo), self.expr(s.hi), self.expr(s.step)
        self.emit(f"for {s.var} in range({lo}, {hi}, {step}):")
        self.indent += 1
        self.body(s.body)
        self.indent -= 1

    def _while(self, s: N.While) -> None:
        if self.mask is not None or self.expr_tainted(s.cond):
            raise UnvectorizableError(
                f"{self.fn.name}: while-loop condition depends on "
                "batched data"
            )
        self.emit(f"while {self.expr(s.cond)}:")
        self.indent += 1
        self.body(s.body)
        self.indent -= 1

    # -- function -----------------------------------------------------------
    def _emit_return(self, values: List[str]) -> None:
        if self.mask is not None:
            raise UnvectorizableError(
                f"{self.fn.name}: return under a data-dependent branch"
            )
        parts = values + [f"_tr_{t}" for t in self.traces]
        if len(parts) == 1:
            self.emit(f"return {parts[0]}")
        else:
            self.emit(f"return ({', '.join(parts)})")

    def generate(self) -> str:
        fn = self.fn
        for s in walk_stmts(fn.body):
            if isinstance(s, N.Push) and s.stack not in self.stacks:
                self.stacks.append(s.stack)
            if (
                isinstance(s, (N.Pop, N.PopDiscard))
                and s.stack not in self.stacks
            ):
                self.stacks.append(s.stack)
            if isinstance(s, N.TraceAppend) and s.trace not in self.traces:
                self.traces.append(s.trace)
        params = ", ".join(p.name for p in fn.params)
        header = f"def {fn.name}({params}):"
        for stack in self.stacks:
            self.emit(f"_stk_{stack} = []")
        for trace in self.traces:
            self.emit(f"_tr_{trace} = []")
        self.body(fn.body)
        if not fn.body or not isinstance(
            fn.body[-1], (N.Return, N.ReturnTuple)
        ):
            self._emit_return(["None"])
        return header + "\n" + "\n".join(self.lines)


# --------------------------------------------------------------------------
# Config-batched (precision-parameterized) generation
# --------------------------------------------------------------------------
#
# The search hot path evaluates K precision configurations of one kernel.
# Instead of rewriting the IR and recompiling per configuration, the
# config-lane generator renders the kernel ONCE with every potential
# demotion point turned into a *runtime rounding site*:
#
#     xd1 = _rnd(_rs[7], ((rate + xpowerterm) * otime + xlogterm) / xden)
#
# ``_rs[7]`` is a per-lane selector (None, or (K, 1) masks choosing
# f32/f16 rounding per config lane), so one execution of the generated
# code evaluates all K configurations at once — each lane performing,
# bit for bit, the operations the per-config scalar code would.  Cycle
# accounting becomes runtime too: every statement pygen would charge a
# (dtype-dependent) constant for charges a per-lane vector ``_ch[i]``
# instead, and float constants are passed through ``_cs`` so adjoint
# variants whose constants depend on storage precision (machine-epsilon
# factors in error models) can share the same compiled code.
#
# The selector/charge/constant vectors for a concrete pool of configs
# are derived by :func:`repro.codegen.compile.lower_config_pool`, which
# runs the *same* dtype re-inference the scalar path's
# ``apply_precision`` uses — that, plus the shared numpy runtime of the
# input-sweep engine, is what makes the lanes bit-identical.


@dataclass
class RoundSite:
    """One potential rounding point in the generated code.

    ``kind`` is one of ``"expr"`` (operation result), ``"index"``
    (array-element read), ``"store"`` (assignment target), ``"decl"``
    (declaration initializer), or ``"param"`` (entry rounding of an
    incoming argument); ``node`` is the IR node whose lowered dtype
    decides the per-lane selector.
    """

    kind: str
    node: object


@dataclass
class ChargeSite:
    """One cycle-accounting point whose cost depends on lane dtypes.

    ``kind``: ``"store"`` (Assign), ``"decl"`` (VarDecl with init),
    ``"if"`` (branch condition), ``"while"`` (per-iteration condition
    plus bookkeeping).  Mirrors exactly where pygen's counting mode
    emits ``_cost +=`` statements.
    """

    kind: str
    node: object


@dataclass
class ConfigLaneProgram:
    """A config-batched rendering of one IR function plus its site maps.

    The generated function's signature is the IR function's parameters
    followed by ``_rs`` (rounding selectors), ``_ch`` (charge vectors)
    and ``_cs`` (float-constant values) — the per-pool lane parameters
    produced by lowering.
    """

    fn: N.Function
    source: str
    counting: bool
    allow_arrays: bool
    batched: frozenset
    round_sites: List[RoundSite]
    charge_sites: List[ChargeSite]
    const_sites: List[N.Const]
    #: baseline storage dtype of every variable (pre-demotion)
    var_baseline: dict


_FLOAT_DTYPES = (DType.F64, DType.F32, DType.F16)


class _ConfigLaneGen(_BatchGen):
    """Config-lane variant of the batch generator.

    Inherits the if-conversion / masking / tape machinery of
    :class:`_BatchGen` and replaces every *static* precision decision
    (rounding wrappers chosen by inferred dtypes, cycle constants baked
    by the cost model) with indexed runtime sites.
    """

    def __init__(
        self,
        fn: N.Function,
        batched: Set[str],
        counting: bool,
        allow_arrays: bool,
    ) -> None:
        from repro.ir.typecheck import collect_var_dtypes

        self.var_baseline = collect_var_dtypes(fn)
        config_taint = {
            name
            for name, dt in self.var_baseline.items()
            if dt in _FLOAT_DTYPES
        }
        super().__init__(
            fn,
            set(batched),
            extra_taint=config_taint,
            allow_arrays=allow_arrays,
        )
        self.counting = counting
        self.round_sites: List[RoundSite] = []
        self.charge_sites: List[ChargeSite] = []
        self.const_sites: List[N.Const] = []

    # -- site registration ---------------------------------------------------
    def _round_site(self, kind: str, node: object) -> int:
        self.round_sites.append(RoundSite(kind, node))
        return len(self.round_sites) - 1

    def _emit_charge(self, kind: str, node: object) -> None:
        if not self.counting:
            return
        self.charge_sites.append(ChargeSite(kind, node))
        i = len(self.charge_sites) - 1
        if self.mask is None:
            self.emit(f"_cost = _cost + _ch[{i}]")
        else:
            self.emit(
                f"_cost = _cost + _where({self.mask}, _ch[{i}], 0.0)"
            )

    # -- expressions ---------------------------------------------------------
    def expr(self, e: N.Expr) -> str:
        text = self._expr_raw(e)
        dt = e.dtype or DType.F64
        if dt not in _FLOAT_DTYPES:
            return text
        if isinstance(e, N.BinOp) and (
            e.op in N.CMPOPS or e.op in N.BOOLOPS
        ):
            return text
        if isinstance(e, (N.BinOp, N.Call)):
            return f"_rnd(_rs[{self._round_site('expr', e)}], {text})"
        if isinstance(e, N.Index):
            # arrays are passed unrounded and lane-uniform; demoted
            # storage rounds at every element read (idempotent, so it
            # matches the scalar path's round-once-on-entry exactly)
            return f"_rnd(_rs[{self._round_site('index', e)}], {text})"
        return text

    def _expr_raw(self, e: N.Expr) -> str:
        if isinstance(e, N.Const):
            if isinstance(e.value, bool):
                return "True" if e.value else "False"
            if isinstance(e.value, float):
                self.const_sites.append(e)
                return f"_cs[{len(self.const_sites) - 1}]"
            return repr(e.value)
        if isinstance(e, N.Index):
            if not self.allow_arrays:
                raise UnvectorizableError(
                    f"{self.fn.name}: array indexing is not supported "
                    "by the grid backend"
                )
            if self.expr_tainted(e.index):
                raise UnvectorizableError(
                    f"{self.fn.name}: array index depends on lane data"
                )
            return f"{e.base}[{self.expr(e.index)}]"
        return super()._expr_raw(e)

    # -- stores --------------------------------------------------------------
    def _store(self, target: N.LValue, value: N.Expr) -> None:
        text = self.expr(value)
        if isinstance(target, N.Index):
            if not self.allow_arrays:
                raise UnvectorizableError(
                    f"{self.fn.name}: array-element store is not "
                    "supported by the grid backend"
                )
            if self.mask is not None:
                raise UnvectorizableError(
                    f"{self.fn.name}: array-element store under a "
                    "data-dependent branch cannot be config-batched"
                )
            if self.expr_tainted(target.index):
                raise UnvectorizableError(
                    f"{self.fn.name}: array store index depends on "
                    "lane data"
                )
            site = self._round_site("store", target)
            self.emit(
                f"{target.base}[{self.expr(target.index)}] = "
                f"_rnd(_rs[{site}], {text})"
            )
            return
        base_dt = self.var_baseline.get(target.id, DType.F64)
        if base_dt in _FLOAT_DTYPES:
            text = f"_rnd(_rs[{self._round_site('store', target)}], {text})"
        if self.mask is None:
            self.emit(f"{target.id} = {text}")
        else:
            self.emit(
                f"{target.id} = _where({self.mask}, {text}, {target.id})"
            )

    # -- statements ----------------------------------------------------------
    def stmt(self, s: N.Stmt) -> None:
        if isinstance(s, N.VarDecl):
            if s.init is None:
                self.emit(f"{s.name} = 0.0")
                return
            text = self.expr(s.init)
            if s.dtype in _FLOAT_DTYPES:
                text = f"_rnd(_rs[{self._round_site('decl', s)}], {text})"
            # declarations are never blended, even under a mask (see
            # _BatchGen.stmt)
            self.emit(f"{s.name} = {text}")
            self._emit_charge("decl", s)
            return
        if isinstance(s, N.Assign):
            self._store(s.target, s.value)
            self._emit_charge("store", s)
            return
        super().stmt(s)

    # -- control flow ---------------------------------------------------------
    def _if(self, s: N.If) -> None:
        # pygen charges the condition before entering either arm
        self._emit_charge("if", s)
        super()._if(s)

    def _for(self, s: N.For) -> None:
        if self.mask is not None:
            raise UnvectorizableError(
                f"{self.fn.name}: loop under a data-dependent branch "
                "cannot be vectorized"
            )
        for e in (s.lo, s.hi, s.step):
            if self.expr_tainted(e):
                raise UnvectorizableError(
                    f"{self.fn.name}: loop bound depends on batched data"
                )
        lo, hi, step = self.expr(s.lo), self.expr(s.hi), self.expr(s.step)
        self.emit(f"for {s.var} in range({lo}, {hi}, {step}):")
        self.indent += 1
        if self.counting:
            self.emit("_cost = _cost + 1.0")  # loop bookkeeping
        self.body(s.body)
        self.indent -= 1

    def _while(self, s: N.While) -> None:
        if self.mask is not None or self.expr_tainted(s.cond):
            raise UnvectorizableError(
                f"{self.fn.name}: while-loop condition depends on "
                "batched data"
            )
        self.emit(f"while {self.expr(s.cond)}:")
        self.indent += 1
        self._emit_charge("while", s)
        self.body(s.body)
        self.indent -= 1

    # -- function ------------------------------------------------------------
    def _emit_return(self, values: List[str]) -> None:
        if self.mask is not None:
            raise UnvectorizableError(
                f"{self.fn.name}: return under a data-dependent branch"
            )
        parts = values + [f"_tr_{t}" for t in self.traces]
        if self.counting:
            parts.append("_cost")
        if len(parts) == 1:
            self.emit(f"return {parts[0]}")
        else:
            self.emit(f"return ({', '.join(parts)})")

    def generate(self) -> str:
        fn = self.fn
        for s in walk_stmts(fn.body):
            if isinstance(s, N.Push) and s.stack not in self.stacks:
                self.stacks.append(s.stack)
            if (
                isinstance(s, (N.Pop, N.PopDiscard))
                and s.stack not in self.stacks
            ):
                self.stacks.append(s.stack)
            if isinstance(s, N.TraceAppend) and s.trace not in self.traces:
                self.traces.append(s.trace)
        params = [p.name for p in fn.params] + ["_rs", "_ch", "_cs"]
        header = f"def {fn.name}({', '.join(params)}):"
        for stack in self.stacks:
            self.emit(f"_stk_{stack} = []")
        for trace in self.traces:
            self.emit(f"_tr_{trace} = []")
        if self.counting:
            self.emit("_cost = 0.0")
        for p in fn.params:
            # demoted parameter storage rounds the incoming value, per
            # lane (the scalar path rounds in CompiledFunction.__call__)
            if isinstance(p.type, ArrayType):
                continue
            if p.type.dtype in _FLOAT_DTYPES:
                i = self._round_site("param", p)
                self.emit(f"{p.name} = _rnd(_rs[{i}], {p.name})")
        self.body(fn.body)
        if not fn.body or not isinstance(
            fn.body[-1], (N.Return, N.ReturnTuple)
        ):
            self._emit_return(["None"])
        return header + "\n" + "\n".join(self.lines)


def generate_config_lane_source(
    fn: N.Function,
    batched: Set[str] = frozenset(),
    counting: bool = False,
    allow_arrays: bool = False,
) -> ConfigLaneProgram:
    """Render ``fn`` as config-batched (precision-parameterized) source.

    :param batched: scalar parameters additionally batched along the
        *input* axis (length-N arrays); the config axis is always
        present.  An empty set gives the per-point form used when
        inputs (or array arguments) must stay lane-uniform.
    :param counting: bake per-lane simulated-cycle accumulation in.
    :param allow_arrays: permit (lane-uniform) array parameters with
        lane-invariant indices — the per-point execution mode.
    :raises UnvectorizableError: when the structure cannot execute
        array-at-a-time; callers fall back to the per-config scalar
        path.
    """
    gen = _ConfigLaneGen(
        fn, set(batched), counting=counting, allow_arrays=allow_arrays
    )
    source = gen.generate()
    return ConfigLaneProgram(
        fn=fn,
        source=source,
        counting=counting,
        allow_arrays=allow_arrays,
        batched=frozenset(batched),
        round_sites=gen.round_sites,
        charge_sites=gen.charge_sites,
        const_sites=gen.const_sites,
        var_baseline=gen.var_baseline,
    )


def generate_batch_source(fn: N.Function, batched: Set[str]) -> str:
    """Render ``fn`` as NumPy-vectorized batch Python source.

    :param batched: names of scalar parameters that arrive as length-N
        arrays; all other parameters are lane-uniform scalars.
    :raises UnvectorizableError: if the function's structure cannot be
        executed array-at-a-time (see module docstring) — callers fall
        back to a scalar loop.
    """
    return _BatchGen(fn, set(batched)).generate()
