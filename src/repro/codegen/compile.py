"""Compile generated Python source and wrap it for callers.

The wrapper layer handles the numpy boundary: array parameters arrive as
``np.ndarray`` (or any sequence), are converted to plain Python lists for
fast element access in the generated code (per the HPC-Python guidance:
avoid numpy scalar indexing in hot scalar loops), and are written back on
exit to preserve the IR's by-reference array semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.codegen import runtime
from repro.codegen.pygen import generate_source
from repro.interp.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.ir import nodes as N
from repro.ir.types import ArrayType
from repro.util.errors import ExecutionError


class CompiledFunction:
    """A compiled IR function plus its calling convention metadata."""

    def __init__(
        self,
        fn: N.Function,
        raw: Callable,
        source: str,
        counting: bool,
        traces: List[str],
    ) -> None:
        self.fn = fn
        self.raw = raw
        self.source = source
        self.counting = counting
        self.traces = traces
        self._array_params = [
            i
            for i, p in enumerate(fn.params)
            if isinstance(p.type, ArrayType)
        ]
        # parameters stored at reduced precision: incoming values are
        # rounded on entry (demoting an input's storage rounds the data)
        from repro.ir.types import DType

        self._rounded_params = [
            (i, p.type.dtype)
            for i, p in enumerate(fn.params)
            if p.type.dtype in (DType.F32, DType.F16)
        ]

    def __call__(self, *args: object) -> object:
        """Call with user-facing conventions (numpy arrays in/out).

        Returns the primal return value.  If the function was compiled
        with ``counting`` or has sensitivity traces, returns a tuple
        ``(value, extras_dict)`` instead, where ``extras_dict`` may hold
        ``"cost"`` and per-trace lists.
        """
        if len(args) != len(self.fn.params):
            raise ExecutionError(
                f"{self.fn.name}: expected {len(self.fn.params)} arguments,"
                f" got {len(args)}"
            )
        call_args = list(args)
        if self._rounded_params:
            from repro.fp.precision import round_to

            for i, dt in self._rounded_params:
                a = call_args[i]
                if isinstance(a, np.ndarray):
                    call_args[i] = np.asarray(round_to(a, dt))
                elif isinstance(a, (int, float)):
                    call_args[i] = round_to(float(a), dt)
        writebacks: List[Tuple[np.ndarray, list]] = []
        for i in self._array_params:
            a = call_args[i]
            if isinstance(a, np.ndarray):
                lst = a.tolist()
                call_args[i] = lst
                writebacks.append((a, lst))
            elif isinstance(a, list):
                pass  # trusted fast path (ADAPT passes AdFloat lists)
            else:
                call_args[i] = list(a)  # type: ignore[arg-type]
        result = self.raw(*call_args)
        for orig, lst in writebacks:
            orig[:] = lst
        if not self.traces and not self.counting:
            return result
        # unpack extra return slots
        values = result if isinstance(result, tuple) else (result,)
        n_extra = len(self.traces) + (1 if self.counting else 0)
        base = values[: len(values) - n_extra]
        extras_vals = values[len(values) - n_extra:]
        extras: Dict[str, object] = {}
        for name, val in zip(self.traces, extras_vals):
            extras[name] = val
        if self.counting:
            extras["cost"] = extras_vals[-1]
        primal = base[0] if len(base) == 1 else base
        return primal, extras


def compile_raw(
    fn: N.Function,
    dispatch: bool = False,
    counting: bool = False,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
    extra_bindings: Optional[Dict[str, object]] = None,
) -> CompiledFunction:
    """Generate, compile, and wrap ``fn``.

    :param dispatch: bind value-type-generic intrinsic shims so the ADAPT
        baseline's ``AdFloat`` can flow through the code.
    :param counting: bake simulated-cycle accumulation into the code.
    :param approx: intrinsics to execute (and cost) as FastApprox.
    :param extra_bindings: extra globals for the generated module (used
        by external error models to bind their ``user_err`` callable).
    """
    src = generate_source(
        fn, counting=counting, cost_model=cost_model, approx=approx
    )
    if dispatch:
        g = runtime.dispatch_bindings()
    else:
        g = runtime.direct_bindings(approx=approx)
    if extra_bindings:
        g.update(extra_bindings)
    code = compile(src, filename=f"<repro:{fn.name}>", mode="exec")
    ns: Dict[str, object] = {}
    exec(code, g, ns)  # noqa: S102 - compiling our own generated source
    raw = ns[fn.name]
    traces: List[str] = []
    from repro.ir.visitor import walk_stmts

    for s in walk_stmts(fn.body):
        if isinstance(s, N.TraceAppend) and s.trace not in traces:
            traces.append(s.trace)
    return CompiledFunction(fn, raw, src, counting, traces)


def compile_primal(fn: N.Function, approx: Optional[Set[str]] = None) -> CompiledFunction:
    """Compile the plain primal (direct bindings, no counting)."""
    return compile_raw(fn, dispatch=False, counting=False, approx=approx)
