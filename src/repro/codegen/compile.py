"""Compile generated Python source and wrap it for callers.

The wrapper layer handles the numpy boundary: array parameters arrive as
``np.ndarray`` (or any sequence), are converted to plain Python lists for
fast element access in the generated code (per the HPC-Python guidance:
avoid numpy scalar indexing in hot scalar loops), and are written back on
exit to preserve the IR's by-reference array semantics.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.codegen import runtime
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.codegen.npgen import (
    _FLOAT_DTYPES,
    ConfigLaneProgram,
    generate_config_lane_source,
)
from repro.codegen.pygen import generate_source
from repro.interp.cost_model import (
    CostModel,
    DEFAULT_COST_MODEL,
    expr_cost,
    store_cost,
)
from repro.ir import nodes as N
from repro.ir.fingerprint import ir_fingerprint
from repro.ir.types import (
    PROMOTION_RANK,
    ArrayType,
    DType,
    ScalarType,
)
from repro.ir.typecheck import infer_types
from repro.ir.visitor import walk_stmts
from repro.util.errors import ExecutionError, ReproError


class CompiledFunction:
    """A compiled IR function plus its calling convention metadata."""

    def __init__(
        self,
        fn: N.Function,
        raw: Callable,
        source: str,
        counting: bool,
        traces: List[str],
    ) -> None:
        self.fn = fn
        self.raw = raw
        self.source = source
        self.counting = counting
        self.traces = traces
        self._array_params = [
            i
            for i, p in enumerate(fn.params)
            if isinstance(p.type, ArrayType)
        ]
        # parameters stored at reduced precision: incoming values are
        # rounded on entry (demoting an input's storage rounds the data)
        from repro.ir.types import DType

        self._rounded_params = [
            (i, p.type.dtype)
            for i, p in enumerate(fn.params)
            if p.type.dtype in (DType.F32, DType.F16)
        ]

    def __call__(self, *args: object) -> object:
        """Call with user-facing conventions (numpy arrays in/out).

        Returns the primal return value.  If the function was compiled
        with ``counting`` or has sensitivity traces, returns a tuple
        ``(value, extras_dict)`` instead, where ``extras_dict`` may hold
        ``"cost"`` and per-trace lists.
        """
        if len(args) != len(self.fn.params):
            raise ExecutionError(
                f"{self.fn.name}: expected {len(self.fn.params)} arguments,"
                f" got {len(args)}"
            )
        call_args = list(args)
        if self._rounded_params:
            from repro.fp.precision import round_to

            for i, dt in self._rounded_params:
                a = call_args[i]
                if isinstance(a, np.ndarray):
                    call_args[i] = np.asarray(round_to(a, dt))
                elif isinstance(a, (int, float)):
                    call_args[i] = round_to(float(a), dt)
        writebacks: List[Tuple[np.ndarray, list]] = []
        for i in self._array_params:
            a = call_args[i]
            if isinstance(a, np.ndarray):
                lst = a.tolist()
                call_args[i] = lst
                writebacks.append((a, lst))
            elif isinstance(a, list):
                pass  # trusted fast path (ADAPT passes AdFloat lists)
            else:
                call_args[i] = list(a)  # type: ignore[arg-type]
        result = self.raw(*call_args)
        for orig, lst in writebacks:
            orig[:] = lst
        if not self.traces and not self.counting:
            return result
        # unpack extra return slots
        values = result if isinstance(result, tuple) else (result,)
        n_extra = len(self.traces) + (1 if self.counting else 0)
        base = values[: len(values) - n_extra]
        extras_vals = values[len(values) - n_extra:]
        extras: Dict[str, object] = {}
        for name, val in zip(self.traces, extras_vals):
            extras[name] = val
        if self.counting:
            extras["cost"] = extras_vals[-1]
        primal = base[0] if len(base) == 1 else base
        return primal, extras


def compile_raw(
    fn: N.Function,
    dispatch: bool = False,
    counting: bool = False,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
    extra_bindings: Optional[Dict[str, object]] = None,
) -> CompiledFunction:
    """Generate, compile, and wrap ``fn``.

    :param dispatch: bind value-type-generic intrinsic shims so the ADAPT
        baseline's ``AdFloat`` can flow through the code.
    :param counting: bake simulated-cycle accumulation into the code.
    :param approx: intrinsics to execute (and cost) as FastApprox.
    :param extra_bindings: extra globals for the generated module (used
        by external error models to bind their ``user_err`` callable).
    """
    src = generate_source(
        fn, counting=counting, cost_model=cost_model, approx=approx
    )
    if dispatch:
        g = runtime.dispatch_bindings()
    else:
        g = runtime.direct_bindings(approx=approx)
    if extra_bindings:
        g.update(extra_bindings)
    code = compile(src, filename=f"<repro:{fn.name}>", mode="exec")
    ns: Dict[str, object] = {}
    exec(code, g, ns)  # noqa: S102 - compiling our own generated source
    raw = ns[fn.name]
    traces: List[str] = []
    from repro.ir.visitor import walk_stmts

    for s in walk_stmts(fn.body):
        if isinstance(s, N.TraceAppend) and s.trace not in traces:
            traces.append(s.trace)
    return CompiledFunction(fn, raw, src, counting, traces)


def compile_primal(fn: N.Function, approx: Optional[Set[str]] = None) -> CompiledFunction:
    """Compile the plain primal (direct bindings, no counting)."""
    return compile_raw(fn, dispatch=False, counting=False, approx=approx)


# --------------------------------------------------------------------------
# Config-batched kernels: compile once per fingerprint, lower per pool
# --------------------------------------------------------------------------
#
# The precision-search hot path scores K configurations of one kernel.
# A :class:`ConfigLaneKernel` is that kernel compiled ONCE in the
# precision-parameterized form of :mod:`repro.codegen.npgen`
# (``generate_config_lane_source``); :func:`lower_config_pool` then
# derives, per proposal pool, the lane parameters (rounding selectors,
# cycle-charge vectors, constant values) that specialize the compiled
# code to each configuration at *runtime*.  Lowering runs the exact
# dtype re-inference ``apply_precision`` performs — so each lane's
# rounding points and cycle charges match the per-config scalar path
# bit for bit — but compiles nothing.


class ConfigLoweringError(ReproError):
    """A configuration pool cannot be lowered onto the compiled lanes.

    Signals a structural/semantic limitation (e.g. a config targeting a
    non-float variable, or a per-config adjoint whose optimized shape
    diverged from the baseline).  Callers fall back to the per-config
    scalar path — results are identical either way, only slower.
    """


def _dtype_code(dt: Optional[DType]) -> int:
    if dt is DType.F32:
        return 1
    if dt is DType.F16:
        return 2
    return 0


def _site_dtype(kind: str, node: object) -> Optional[DType]:
    if kind == "param":
        return node.type.dtype  # type: ignore[attr-defined]
    return getattr(node, "dtype", None)


def _charge_value(
    site,
    cost_model: CostModel,
    approx: Optional[Set[str]],
) -> float:
    """Evaluate one charge site against current node dtypes — the same
    ``expr_cost``/``store_cost`` arithmetic pygen bakes into counting
    code."""
    s = site.node
    if site.kind == "decl":
        tgt = N.Name(s.name)
        tgt.dtype = s.dtype
        return expr_cost(s.init, cost_model, approx) + store_cost(
            tgt, s.init, cost_model
        )
    if site.kind == "store":
        return expr_cost(s.value, cost_model, approx) + store_cost(
            s.target, s.value, cost_model
        )
    if site.kind == "if":
        return expr_cost(s.cond, cost_model, approx)
    if site.kind == "while":
        return 1.0 + expr_cost(s.cond, cost_model, approx)
    raise KeyError(site.kind)


@dataclass
class LoweredConfigPool:
    """Lane parameters specializing a compiled kernel to K configs."""

    k: int
    #: per round site: ``None`` or a :class:`runtime.LaneSelector`
    selectors: List[object]
    #: per charge site: float (lane-uniform) or ``(K, 1)`` array
    charges: List[object]
    #: per float-constant site: float (lane-uniform) or ``(K, 1)`` array
    consts: List[object]


def _pack_row(row: np.ndarray, k: int) -> object:
    """Collapse a lane-uniform row to a scalar, else a (K, 1) column."""
    if np.all(row == row[0]):
        return float(row[0])
    return row.reshape(k, 1).copy()


def _pack_rows(rows: np.ndarray, k: int) -> List[object]:
    return [_pack_row(row, k) for row in rows]


def lower_config_pool_reference(
    program: ConfigLaneProgram,
    configs: Sequence[object],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> LoweredConfigPool:
    """Reference lowering: one full type-inference pass per config.

    Applies each configuration's storage dtypes to the program's IR *in
    place* (restored afterwards) and re-runs the shared type inference —
    exactly what ``apply_precision`` does on a clone — then reads each
    site's dtype/cost off the re-typed nodes.  No cloning, no code
    generation, no compilation.

    This is the semantics oracle: :func:`lower_config_pool` (the
    vectorized production path) must produce identical lane parameters,
    and the test suite asserts it does.

    :raises KeyError: if a configuration names unknown variables (the
        same error the scalar path raises).
    :raises ConfigLoweringError: if a configuration targets a variable
        whose baseline storage is not a float (the scalar path would
        change integer semantics; callers fall back to it).
    """
    from repro.tuning.config import resolve_targets

    fn = program.fn
    k = len(configs)
    if k == 0:
        raise ValueError("empty configuration pool")
    decls = [s for s in walk_stmts(fn.body) if isinstance(s, N.VarDecl)]
    base_params = [p.type for p in fn.params]
    base_decls = [d.dtype for d in decls]
    rs = np.zeros((len(program.round_sites), k), dtype=np.int8)
    ch = np.zeros((len(program.charge_sites), k), dtype=np.float64)
    cs = np.zeros((len(program.const_sites), k), dtype=np.float64)

    def restore() -> None:
        for p, t in zip(fn.params, base_params):
            p.type = t
        for d, t in zip(decls, base_decls):
            d.dtype = t

    try:
        for j, config in enumerate(configs):
            targets = resolve_targets(fn, config)
            for name in targets:
                if program.var_baseline.get(name) not in _FLOAT_DTYPES:
                    raise ConfigLoweringError(
                        f"{fn.name}: config targets non-float "
                        f"variable {name!r}"
                    )
            restore()
            for p in fn.params:
                dt = targets.get(p.name)
                if dt is not None:
                    p.type = (
                        ArrayType(dt)
                        if isinstance(p.type, ArrayType)
                        else ScalarType(dt)
                    )
            for d in decls:
                dt = targets.get(d.name)
                if dt is not None:
                    d.dtype = dt
            infer_types(fn)
            for i, site in enumerate(program.round_sites):
                rs[i, j] = _dtype_code(_site_dtype(site.kind, site.node))
            for i, site in enumerate(program.charge_sites):
                ch[i, j] = _charge_value(site, cost_model, approx)
            for i, cnode in enumerate(program.const_sites):
                cs[i, j] = cnode.value
    finally:
        restore()
        infer_types(fn)
    return LoweredConfigPool(
        k=k,
        selectors=[
            runtime.LaneSelector.from_codes(rs[i])
            for i in range(len(program.round_sites))
        ],
        charges=_pack_rows(ch, k),
        consts=_pack_rows(cs, k),
    )


# -- vectorized lowering (the production path) ------------------------------
#
# The reference lowering above re-types the whole IR once per config —
# O(K × IR) Python work that dominates pool evaluation once execution
# itself is vectorized.  The production path below computes the same
# lane parameters in ONE memoized expression-evaluation pass: every
# variable's dtype becomes a (K,) *code vector* and the typing lattice
# (``repro.ir.types.promote`` is a rank max) plus the cost-model
# arithmetic evaluate vectorized over all K configs at once.

#: dtype codes = the shared promotion ranks (repro.ir.types), so
#: ``promote`` is ``max``: the B1-vs-B1 case, where promote returns B1,
#: is preserved because max(0, 0) = 0, and any mix involving a numeric
#: ranks above B1, matching promote's boolean-to-integer rule
_RANK_CODE = PROMOTION_RANK
_CODE_ORDER = tuple(
    sorted(_RANK_CODE, key=_RANK_CODE.__getitem__)
)
#: rank code -> rounding-selector code (0 keep, 1 f32, 2 f16)
_SEL_MAP = np.array(
    [
        {DType.F32: 1, DType.F16: 2}.get(dt, 0)
        for dt in _CODE_ORDER
    ],
    dtype=np.int8,
)
_F64_CODE = _RANK_CODE[DType.F64]
#: floats occupy the top of the promotion order; ``code >= _FLOAT_MIN``
#: is the vectorized ``is_float`` test (checked here so a lattice
#: change in repro.ir.types cannot silently break the lowering)
_FLOAT_MIN = min(_RANK_CODE[dt] for dt in _FLOAT_DTYPES)
assert all(
    (_RANK_CODE[dt] >= _FLOAT_MIN) == (dt in _FLOAT_DTYPES)
    for dt in _RANK_CODE
)


class _LoweringPlan:
    """Per-program precomputation shared by every pool lowering."""

    def __init__(self, program: ConfigLaneProgram) -> None:
        fn = program.fn
        self.base_codes: Dict[str, int] = {
            name: _RANK_CODE[dt]
            for name, dt in program.var_baseline.items()
        }
        #: resolvable names in the order resolve_targets scans them,
        #: each with its set of inlined-prefix keys that can match it
        names = [p.name for p in fn.params] + [
            s.name
            for s in walk_stmts(fn.body)
            if isinstance(s, N.VarDecl)
        ]
        self.name_match: List[Tuple[str, frozenset]] = []
        seen = set()
        for name in names:
            if name in seen:
                continue
            seen.add(name)
            prefixes = frozenset(
                name[:i]
                for i in range(1, len(name))
                if name[i:].startswith("_in")
            )
            self.name_match.append((name, prefixes))


def _plan_for(program: ConfigLaneProgram) -> _LoweringPlan:
    plan = getattr(program, "_plan", None)
    if plan is None:
        plan = _LoweringPlan(program)
        program._plan = plan  # type: ignore[attr-defined]
    return plan


def _fast_targets(
    plan: _LoweringPlan, fn_name: str, config
) -> Dict[str, DType]:
    """Vector-lowering twin of ``tuning.config.resolve_targets``.

    Same semantics (exact keys win over inlined-prefix matches, first
    config key in insertion order wins among prefixes, unmatched keys
    raise), evaluated against the plan's precomputed prefix sets.
    """
    demotions = config.demotions
    matched = set()
    out: Dict[str, DType] = {}
    for name, prefixes in plan.name_match:
        dt = demotions.get(name)
        if dt is not None:
            matched.add(name)
            out[name] = dt
            continue
        if prefixes:
            for key, kdt in demotions.items():
                if key in prefixes:
                    matched.add(key)
                    out[name] = kdt
                    break
    missing = set(demotions) - matched
    if missing:
        raise KeyError(
            f"{fn_name}: unknown variables in precision config: "
            f"{sorted(missing)}"
        )
    return out


class _PoolEval:
    """Memoized vectorized evaluation of expression dtypes and costs.

    ``codes`` are promotion-rank code scalars (config-uniform) or
    ``(K,)`` vectors; ``cost`` mirrors ``interp.cost_model.expr_cost``
    exactly, evaluated per lane.
    """

    def __init__(
        self,
        env: Dict[str, object],
        cost_model: CostModel,
        approx: Optional[Set[str]],
    ) -> None:
        self.env = env
        self.cm = cost_model
        self.approx = approx
        self._memo: Dict[int, Tuple[object, object]] = {}
        per = lambda table: np.array(  # noqa: E731
            [table[dt] for dt in _CODE_ORDER], dtype=np.float64
        )
        self.add = per(cost_model.add)
        self.mul = per(cost_model.mul)
        self.div = per(cost_model.div)
        self.array_access = per(cost_model.array_access)
        self.scalar_store = per(cost_model.scalar_store)
        self._call_tables: Dict[str, np.ndarray] = {}

    def _call_table(self, fname: str) -> np.ndarray:
        tab = self._call_tables.get(fname)
        if tab is None:
            tab = np.array(
                [
                    self.cm.call_cost(fname, dt, self.approx)
                    for dt in _CODE_ORDER
                ],
                dtype=np.float64,
            )
            self._call_tables[fname] = tab
        return tab

    @staticmethod
    def _max(a: object, b: object) -> object:
        if isinstance(a, int) and isinstance(b, int):
            return max(a, b)
        return np.maximum(a, b)

    @staticmethod
    def _cast_term(src: object, dst: object, cast_cost: float) -> object:
        """Cost of an implicit float-to-float conversion, per lane."""
        if isinstance(src, int) and isinstance(dst, int):
            return (
                cast_cost
                if (
                    src >= _FLOAT_MIN
                    and dst >= _FLOAT_MIN
                    and src != dst
                )
                else 0.0
            )
        need = (
            np.greater_equal(src, _FLOAT_MIN)
            & np.greater_equal(dst, _FLOAT_MIN)
            & np.not_equal(src, dst)
        )
        return np.where(need, cast_cost, 0.0)

    def expr(self, e: N.Expr) -> Tuple[object, object]:
        """Return ``(codes, cost)`` of evaluating ``e`` once."""
        hit = self._memo.get(id(e))
        if hit is not None:
            return hit
        out = self._expr(e)
        self._memo[id(e)] = out
        return out

    def _expr(self, e: N.Expr) -> Tuple[object, object]:
        cm = self.cm
        if isinstance(e, N.Const):
            if isinstance(e.value, bool):
                return 0, 0.0
            if isinstance(e.value, int):
                return 1, 0.0
            return _F64_CODE, 0.0
        if isinstance(e, N.Name):
            return self.env[e.id], 0.0
        if isinstance(e, N.Index):
            _, ci = self.expr(e.index)
            codes = self.env[e.base]
            return codes, ci + self.array_access[codes]
        if isinstance(e, N.BinOp):
            lc, lcost = self.expr(e.left)
            rc, rcost = self.expr(e.right)
            cost = lcost + rcost
            if e.op in N.CMPOPS:
                return 0, cost + cm.compare
            if e.op in N.BOOLOPS:
                return 0, cost + cm.boolean
            codes = self._max(lc, rc)
            if e.op == "/":
                codes = self._max(codes, _F64_CODE)
            if e.op in ("+", "-"):
                cost = cost + self.add[codes]
            elif e.op == "*":
                cost = cost + self.mul[codes]
            else:  # "/", "//", "%"
                cost = cost + self.div[codes]
            cost = cost + self._cast_term(lc, codes, cm.cast)
            cost = cost + self._cast_term(rc, codes, cm.cast)
            return codes, cost
        if isinstance(e, N.UnaryOp):
            oc, ocost = self.expr(e.operand)
            codes = 0 if e.op == "not" else oc
            return codes, ocost + cm.negate
        if isinstance(e, N.Call):
            # intrinsic args promote from I64 up
            codes: object = _RANK_CODE[DType.I64]
            cost: object = 0.0
            for a in e.args:
                ac, acost = self.expr(a)
                codes = self._max(codes, ac)
                cost = cost + acost
            if isinstance(codes, int):
                if codes < _FLOAT_MIN:
                    codes = _F64_CODE
            else:
                codes = np.where(codes < _FLOAT_MIN, _F64_CODE, codes)
            return codes, cost + self._call_table(e.fn)[codes]
        if isinstance(e, N.Cast):
            oc, ocost = self.expr(e.operand)
            codes = _RANK_CODE[e.to]
            return codes, ocost + self._cast_term(oc, codes, cm.cast)
        raise TypeError(type(e).__name__)

    def store_cost(self, target, value_codes: object) -> object:
        """Mirror of ``interp.cost_model.store_cost``, per lane."""
        if isinstance(target, N.Index):
            tdt = self.env[target.base]
            c = self.array_access[tdt]
        else:
            tdt = self.env[target.id]
            c = self.scalar_store[tdt]
        return c + self._cast_term(value_codes, tdt, self.cm.cast)


def lower_config_pool(
    program: ConfigLaneProgram,
    configs: Sequence[object],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> LoweredConfigPool:
    """Derive lane parameters for a pool of precision configurations.

    Vectorized over the config axis: one memoized expression-evaluation
    pass computes every site's per-lane dtype selector and cycle charge
    for all K configurations at once.  Produces exactly the parameters
    :func:`lower_config_pool_reference` (one type-inference pass per
    config — the scalar path's own machinery) would; the test suite
    holds the two to bitwise agreement.

    :raises KeyError: if a configuration names unknown variables (the
        same error the scalar path raises).
    :raises ConfigLoweringError: if a configuration targets a variable
        whose baseline storage is not a float.
    """
    k = len(configs)
    if k == 0:
        raise ValueError("empty configuration pool")
    plan = _plan_for(program)
    fn = program.fn
    env: Dict[str, object] = dict(plan.base_codes)
    for j, config in enumerate(configs):
        targets = _fast_targets(plan, fn.name, config)
        for name, dt in targets.items():
            base = plan.base_codes[name]
            if base < _FLOAT_MIN:
                raise ConfigLoweringError(
                    f"{fn.name}: config targets non-float "
                    f"variable {name!r}"
                )
            cur = env[name]
            if isinstance(cur, int):
                cur = np.full(k, cur, dtype=np.int64)
                env[name] = cur
            cur[j] = _RANK_CODE[dt]

    ev = _PoolEval(env, cost_model, approx)

    def sel_codes(codes: object) -> np.ndarray:
        if isinstance(codes, int):
            return np.full(k, _SEL_MAP[codes], dtype=np.int8)
        return _SEL_MAP[codes]

    selectors: List[object] = []
    for site in program.round_sites:
        if site.kind in ("expr", "index"):
            codes, _ = ev.expr(site.node)  # type: ignore[arg-type]
        elif site.kind == "store":
            node = site.node
            name = node.base if isinstance(node, N.Index) else node.id  # type: ignore[union-attr]
            codes = env[name]
        elif site.kind == "decl":
            codes = env[site.node.name]  # type: ignore[attr-defined]
        else:  # "param"
            codes = env[site.node.name]  # type: ignore[attr-defined]
        if isinstance(codes, int) and _SEL_MAP[codes] == 0:
            selectors.append(None)
        else:
            selectors.append(
                runtime.LaneSelector.from_codes(sel_codes(codes))
            )

    charges: List[object] = []
    for site in program.charge_sites:
        s = site.node
        if site.kind == "decl":
            vc, vcost = ev.expr(s.init)  # type: ignore[attr-defined]
            tdt = env[s.name]  # type: ignore[attr-defined]
            cost = (
                vcost
                + ev.scalar_store[tdt]
                + ev._cast_term(vc, tdt, cost_model.cast)
            )
        elif site.kind == "store":
            vc, vcost = ev.expr(s.value)  # type: ignore[attr-defined]
            cost = vcost + ev.store_cost(s.target, vc)  # type: ignore[attr-defined]
        elif site.kind == "if":
            _, cost = ev.expr(s.cond)  # type: ignore[attr-defined]
        else:  # "while"
            _, cost = ev.expr(s.cond)  # type: ignore[attr-defined]
            cost = cost + 1.0
        if isinstance(cost, float):
            charges.append(float(cost))
        else:
            charges.append(
                _pack_row(np.asarray(cost, dtype=np.float64), k)
            )
    consts: List[object] = [
        float(c.value) for c in program.const_sites  # type: ignore[union-attr]
    ]
    return LoweredConfigPool(
        k=k, selectors=selectors, charges=charges, consts=consts
    )


# -- structural pairing (used to lower pools onto *derived* functions) ------


def _pair_fail(what: str) -> "ConfigLoweringError":
    return ConfigLoweringError(
        f"variant function structure diverged from baseline ({what})"
    )


def _pair_expr(a: N.Expr, b: N.Expr, out: Dict[int, object]) -> None:
    if type(a) is not type(b):
        raise _pair_fail(f"{type(a).__name__} vs {type(b).__name__}")
    out[id(a)] = b
    if isinstance(a, N.Const):
        if type(a.value) is not type(b.value):  # type: ignore[union-attr]
            raise _pair_fail("constant kind")
        if not isinstance(a.value, float) and a.value != b.value:  # type: ignore[union-attr]
            # non-float constants are inlined in the generated source,
            # so a value change cannot be expressed as a lane parameter
            raise _pair_fail("non-float constant value")
    elif isinstance(a, N.Name):
        if a.id != b.id:  # type: ignore[union-attr]
            raise _pair_fail("name")
    elif isinstance(a, N.Index):
        if a.base != b.base:  # type: ignore[union-attr]
            raise _pair_fail("index base")
        _pair_expr(a.index, b.index, out)  # type: ignore[union-attr]
    elif isinstance(a, N.BinOp):
        if a.op != b.op:  # type: ignore[union-attr]
            raise _pair_fail("operator")
        _pair_expr(a.left, b.left, out)  # type: ignore[union-attr]
        _pair_expr(a.right, b.right, out)  # type: ignore[union-attr]
    elif isinstance(a, N.UnaryOp):
        if a.op != b.op:  # type: ignore[union-attr]
            raise _pair_fail("operator")
        _pair_expr(a.operand, b.operand, out)  # type: ignore[union-attr]
    elif isinstance(a, N.Call):
        if a.fn != b.fn or len(a.args) != len(b.args):  # type: ignore[union-attr]
            raise _pair_fail("call")
        for xa, xb in zip(a.args, b.args):  # type: ignore[union-attr]
            _pair_expr(xa, xb, out)
    elif isinstance(a, N.Cast):
        if a.to is not b.to:  # type: ignore[union-attr]
            raise _pair_fail("cast target")
        _pair_expr(a.operand, b.operand, out)  # type: ignore[union-attr]


def _pair_lvalue(a: N.LValue, b: N.LValue, out: Dict[int, object]) -> None:
    if type(a) is not type(b):
        raise _pair_fail("lvalue kind")
    out[id(a)] = b
    if isinstance(a, N.Name):
        if a.id != b.id:  # type: ignore[union-attr]
            raise _pair_fail("store target")
    else:
        if a.base != b.base:  # type: ignore[union-attr]
            raise _pair_fail("store base")
        _pair_expr(a.index, b.index, out)  # type: ignore[union-attr]


def _pair_stmt(a: N.Stmt, b: N.Stmt, out: Dict[int, object]) -> None:
    if type(a) is not type(b):
        raise _pair_fail(f"{type(a).__name__} vs {type(b).__name__}")
    out[id(a)] = b
    if isinstance(a, N.VarDecl):
        if a.name != b.name:  # type: ignore[union-attr]
            raise _pair_fail("decl name")
        if (a.init is None) != (b.init is None):  # type: ignore[union-attr]
            raise _pair_fail("decl initializer")
        if a.init is not None:
            _pair_expr(a.init, b.init, out)  # type: ignore[union-attr]
    elif isinstance(a, N.Assign):
        _pair_lvalue(a.target, b.target, out)  # type: ignore[union-attr]
        _pair_expr(a.value, b.value, out)  # type: ignore[union-attr]
    elif isinstance(a, N.For):
        if a.var != b.var:  # type: ignore[union-attr]
            raise _pair_fail("loop variable")
        _pair_expr(a.lo, b.lo, out)  # type: ignore[union-attr]
        _pair_expr(a.hi, b.hi, out)  # type: ignore[union-attr]
        _pair_expr(a.step, b.step, out)  # type: ignore[union-attr]
        _pair_body(a.body, b.body, out)  # type: ignore[union-attr]
    elif isinstance(a, N.While):
        _pair_expr(a.cond, b.cond, out)  # type: ignore[union-attr]
        _pair_body(a.body, b.body, out)  # type: ignore[union-attr]
    elif isinstance(a, N.If):
        _pair_expr(a.cond, b.cond, out)  # type: ignore[union-attr]
        _pair_body(a.then, b.then, out)  # type: ignore[union-attr]
        _pair_body(a.orelse, b.orelse, out)  # type: ignore[union-attr]
    elif isinstance(a, N.Return):
        _pair_expr(a.value, b.value, out)  # type: ignore[union-attr]
    elif isinstance(a, N.ReturnTuple):
        if len(a.values) != len(b.values):  # type: ignore[union-attr]
            raise _pair_fail("return arity")
        for xa, xb in zip(a.values, b.values):  # type: ignore[union-attr]
            _pair_expr(xa, xb, out)
    elif isinstance(a, N.ExprStmt):
        _pair_expr(a.value, b.value, out)  # type: ignore[union-attr]
    elif isinstance(a, N.Push):
        if a.stack != b.stack:  # type: ignore[union-attr]
            raise _pair_fail("stack")
        _pair_expr(a.value, b.value, out)  # type: ignore[union-attr]
    elif isinstance(a, N.Pop):
        if a.stack != b.stack:  # type: ignore[union-attr]
            raise _pair_fail("stack")
        _pair_lvalue(a.target, b.target, out)  # type: ignore[union-attr]
    elif isinstance(a, N.PopDiscard):
        if a.stack != b.stack:  # type: ignore[union-attr]
            raise _pair_fail("stack")
    elif isinstance(a, N.TraceAppend):
        if a.trace != b.trace:  # type: ignore[union-attr]
            raise _pair_fail("trace")
        _pair_expr(a.value, b.value, out)  # type: ignore[union-attr]


def _pair_body(
    xs: Sequence[N.Stmt], ys: Sequence[N.Stmt], out: Dict[int, object]
) -> None:
    if len(xs) != len(ys):
        raise _pair_fail("body length")
    for a, b in zip(xs, ys):
        _pair_stmt(a, b, out)


def pair_functions(a: N.Function, b: N.Function) -> Dict[int, object]:
    """Map ``id(node) -> node`` between two structurally equal functions.

    Constants may differ in (float) value and every node may differ in
    dtype annotations — that is the whole point: ``b`` is typically a
    per-config derivation of ``a`` (a demoted clone, or the adjoint of a
    demoted primal) whose lane parameters we want to read off.

    :raises ConfigLoweringError: on any structural divergence.
    """
    if len(a.params) != len(b.params):
        raise _pair_fail("parameter count")
    out: Dict[int, object] = {}
    for pa, pb in zip(a.params, b.params):
        if pa.name != pb.name:
            raise _pair_fail("parameter name")
        out[id(pa)] = pb
    _pair_body(a.body, b.body, out)
    return out


def lower_config_pool_zip(
    program: ConfigLaneProgram,
    variants: Sequence[N.Function],
) -> LoweredConfigPool:
    """Lower a pool by pairing the program against per-config *derived*
    functions (e.g. adjoints regenerated from demoted primals).

    Used when the per-config function cannot be produced by dtype
    re-assignment alone; each variant must be structurally identical to
    the program's baseline function (verified node by node).  Charge
    sites are not supported — counting code goes through
    :func:`lower_config_pool`.
    """
    if program.charge_sites:
        raise ConfigLoweringError(
            "zip lowering does not support counting programs"
        )
    k = len(variants)
    if k == 0:
        raise ValueError("empty variant pool")
    rs = np.zeros((len(program.round_sites), k), dtype=np.int8)
    cs = np.zeros((len(program.const_sites), k), dtype=np.float64)
    for j, var_fn in enumerate(variants):
        mapping = pair_functions(program.fn, var_fn)
        for i, site in enumerate(program.round_sites):
            node = mapping[id(site.node)]
            rs[i, j] = _dtype_code(_site_dtype(site.kind, node))
        for i, cnode in enumerate(program.const_sites):
            cs[i, j] = mapping[id(cnode)].value  # type: ignore[attr-defined]
    return LoweredConfigPool(
        k=k,
        selectors=[
            runtime.LaneSelector.from_codes(rs[i])
            for i in range(len(program.round_sites))
        ],
        charges=[],
        consts=_pack_rows(cs, k),
    )


class ConfigLaneKernel:
    """A compiled precision-parameterized kernel.

    Compiled once per IR fingerprint; specialized to each proposal pool
    by :meth:`lower` (cheap — typing passes only) and executed on all
    lanes at once by calling :attr:`raw` with the pool's lane
    parameters appended.
    """

    def __init__(self, program: ConfigLaneProgram, raw: Callable) -> None:
        self.program = program
        self.raw = raw

    @property
    def source(self) -> str:
        return self.program.source

    def lower(
        self,
        configs: Sequence[object],
        cost_model: CostModel = DEFAULT_COST_MODEL,
        approx: Optional[Set[str]] = None,
    ) -> LoweredConfigPool:
        return lower_config_pool(
            self.program, configs, cost_model=cost_model, approx=approx
        )

    def __call__(self, pool: LoweredConfigPool, *args: object) -> object:
        with np.errstate(all="ignore"):
            return self.raw(
                *args, pool.selectors, pool.charges, pool.consts
            )


#: fingerprint-keyed memo of compiled config-lane kernels.  A precision
#: *configuration* is not part of the key — configurations are runtime
#: lane parameters — but anything that changes the generated code is:
#: the IR content, the batched-input set, counting, the execution mode,
#: and the approx-intrinsic set (baked into the runtime bindings).
_CONFIG_KERNEL_MEMO: "OrderedDict[tuple, ConfigLaneKernel]" = OrderedDict()
_CONFIG_KERNEL_MEMO_MAX = 32
# hit/miss/unvectorizable counts live in the process-wide metrics
# registry; config_kernel_cache_stats()/Session.stats() are views
_CK_HITS = obs_metrics.REGISTRY.counter(
    "repro_config_kernel_hits_total", "config-lane kernel cache hits"
)
_CK_MISSES = obs_metrics.REGISTRY.counter(
    "repro_config_kernel_misses_total",
    "config-lane kernel cache misses (compiles)",
)
_CK_UNVEC = obs_metrics.REGISTRY.counter(
    "repro_config_kernel_unvectorizable_total",
    "kernels that could not be rendered in config-batched form",
)
_CK_ENTRIES = obs_metrics.REGISTRY.gauge(
    "repro_config_kernel_entries", "config-lane kernel cache occupancy"
)
_CK_CAPACITY = obs_metrics.REGISTRY.gauge(
    "repro_config_kernel_capacity", "config-lane kernel cache capacity"
)
_CK_CAPACITY.set(_CONFIG_KERNEL_MEMO_MAX)
_CK_COMPILE_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_kernel_compile_seconds", "config-lane kernel codegen+compile latency"
)
#: guards the memo and its counters against concurrent server worker
#: threads (repro.serve); held across a miss's codegen+exec so one
#: kernel is built per content key, never one per racing thread
_CONFIG_KERNEL_LOCK = threading.RLock()


def config_lane_kernel(
    fn: N.Function,
    batched: Set[str] = frozenset(),
    counting: bool = False,
    allow_arrays: bool = False,
    approx: Optional[Set[str]] = None,
    extra_bindings: Optional[Dict[str, object]] = None,
    use_cache: bool = True,
) -> ConfigLaneKernel:
    """Get (or build) the compiled config-lane kernel for ``fn``.

    Keyed by content fingerprint: re-registered kernels with identical
    IR share one compiled kernel, while *any* semantic change to the IR
    misses the cache — a pool of configurations can never reuse a stale
    kernel because configurations enter at lowering time, not compile
    time.

    :raises UnvectorizableError: when ``fn`` cannot be rendered in
        config-batched form (callers fall back to the scalar path).
    """
    from repro.codegen.npgen import UnvectorizableError

    with _CONFIG_KERNEL_LOCK:
        key = None
        if use_cache and extra_bindings is None:
            key = (
                ir_fingerprint(fn),
                frozenset(batched),
                counting,
                allow_arrays,
                frozenset(approx or ()),
            )
            hit = _CONFIG_KERNEL_MEMO.get(key)
            if hit is not None:
                _CK_HITS.inc()
                _CONFIG_KERNEL_MEMO.move_to_end(key)
                return hit
        _CK_MISSES.inc()
        t0 = time.perf_counter()
        with obs_trace.span(
            "codegen.compile", kernel=fn.name, cached=key is not None
        ):
            try:
                program = generate_config_lane_source(
                    fn,
                    batched=set(batched),
                    counting=counting,
                    allow_arrays=allow_arrays,
                )
            except UnvectorizableError:
                _CK_UNVEC.inc()
                raise
            g = runtime.config_lane_bindings(approx=approx)
            if extra_bindings:
                g.update(extra_bindings)
            code = compile(
                program.source,
                filename=f"<repro-config:{fn.name}>",
                mode="exec",
            )
            ns: Dict[str, object] = {}
            exec(code, g, ns)  # noqa: S102 - compiling our own generated source
            kernel = ConfigLaneKernel(program, ns[fn.name])  # type: ignore[arg-type]
        _CK_COMPILE_SECONDS.observe(time.perf_counter() - t0)
        if key is not None:
            _CONFIG_KERNEL_MEMO[key] = kernel
            while len(_CONFIG_KERNEL_MEMO) > _CONFIG_KERNEL_MEMO_MAX:
                _CONFIG_KERNEL_MEMO.popitem(last=False)
            _CK_ENTRIES.set(len(_CONFIG_KERNEL_MEMO))
        return kernel


def _cache_stats() -> Dict[str, int]:
    """Registry view of the config-kernel memo (non-deprecated internal
    form of :func:`config_kernel_cache_stats`; same dict shape)."""
    with _CONFIG_KERNEL_LOCK:
        return {
            "entries": len(_CONFIG_KERNEL_MEMO),
            "capacity": _CONFIG_KERNEL_MEMO_MAX,
            "hits": _CK_HITS.value,
            "misses": _CK_MISSES.value,
            "unvectorizable": _CK_UNVEC.value,
        }


def config_kernel_cache_stats() -> Dict[str, int]:
    """Occupancy and hit/miss counters of the config-kernel memo.

    .. deprecated:: 1.3
        Legacy wrapper, removed in 2.0 — the counts live in
        :data:`repro.obs.metrics.REGISTRY` (``repro_config_kernel_*``);
        read them via :meth:`repro.session.Session.stats`.
    """
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.codegen.compile.config_kernel_cache_stats()",
        'Session.stats()["config_kernel_cache"]',
    )
    return _cache_stats()


def clear_config_kernel_cache() -> None:
    """Drop all memoized config-lane kernels (test isolation helper).

    The ``repro_config_kernel_*`` registry counters reset too."""
    with _CONFIG_KERNEL_LOCK:
        _CONFIG_KERNEL_MEMO.clear()
        obs_metrics.REGISTRY.reset(prefix="repro_config_kernel_")
        _CK_CAPACITY.set(_CONFIG_KERNEL_MEMO_MAX)
