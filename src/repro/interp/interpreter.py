"""Tree-walking reference interpreter for IR functions.

The interpreter defines the *semantics* of the IR, including storage
rounding: every value is held in binary64, but each store rounds to the
target variable's declared precision and each arithmetic operation rounds
to the operation's inferred precision — exactly the behaviour of C code
with ``float``/``double`` variables, emulated from doubles.

It is intentionally simple (and slow): generated code from
:mod:`repro.codegen` is validated against it, and the mixed-precision
validation runs use it at small problem sizes.  Optional hooks:

* ``approx`` — substitute FastApprox variants for chosen intrinsics,
* ``cost_model`` — accumulate simulated cycles (dynamic, exact),
* ``cast_counter`` — count implicit precision conversions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.fp.counters import CastCounter
from repro.fp.precision import round_to
from repro.frontend.intrinsics import INTRINSICS
from repro.interp.cost_model import CostModel
from repro.ir import nodes as N
from repro.ir.types import ArrayType, DType
from repro.ir.typecheck import collect_var_dtypes
from repro.util.errors import ExecutionError


class _BreakSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


class Interpreter:
    """One interpreter instance per execution (holds run statistics)."""

    def __init__(
        self,
        fn: N.Function,
        approx: Optional[Set[str]] = None,
        cost_model: Optional[CostModel] = None,
        cast_counter: Optional[CastCounter] = None,
        max_steps: int = 500_000_000,
    ) -> None:
        self.fn = fn
        self.approx = approx or set()
        self.cost_model = cost_model
        self.casts = cast_counter
        self.cycles = 0.0
        self.max_steps = max_steps
        self._steps = 0
        self.var_dtypes = collect_var_dtypes(fn)
        self.env: Dict[str, object] = {}

    # -- entry -----------------------------------------------------------------
    def run(self, args: Sequence[object]) -> object:
        """Execute the function; returns its return value (or None)."""
        fn = self.fn
        if len(args) != len(fn.params):
            raise ExecutionError(
                f"{fn.name}: expected {len(fn.params)} arguments, got "
                f"{len(args)}"
            )
        for p, a in zip(fn.params, args):
            if isinstance(p.type, ArrayType):
                if not isinstance(a, np.ndarray):
                    a = np.asarray(a, dtype=np.float64)
                if p.type.dtype in (DType.F32, DType.F16):
                    a = np.asarray(round_to(a, p.type.dtype))
                self.env[p.name] = a
            else:
                self.env[p.name] = self._store_round(
                    p.name, float(a) if p.type.dtype.is_float else a
                )
        try:
            self._exec_body(fn.body)
        except _ReturnSignal as r:
            return r.value
        return None

    # -- statements ---------------------------------------------------------
    def _exec_body(self, body: List[N.Stmt]) -> None:
        for s in body:
            self._exec_stmt(s)

    def _exec_stmt(self, s: N.Stmt) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecutionError(
                f"{self.fn.name}: exceeded max interpreter steps"
            )
        if isinstance(s, N.VarDecl):
            if s.init is not None:
                v = self._eval(s.init)
                self.env[s.name] = self._store_scalar(s.name, s.dtype, v, s.init)
            else:
                self.env[s.name] = 0.0
        elif isinstance(s, N.Assign):
            v = self._eval(s.value)
            if isinstance(s.target, N.Name):
                dt = self.var_dtypes.get(s.target.id, DType.F64)
                self.env[s.target.id] = self._store_scalar(
                    s.target.id, dt, v, s.value
                )
            else:
                arr = self.env[s.target.base]
                idx = int(self._eval(s.target.index))
                dt = self.var_dtypes.get(s.target.base, DType.F64)
                vv = round_to(v, dt) if dt.is_float else v
                self._charge_store(s.target, s.value)
                arr[idx] = vv
        elif isinstance(s, N.For):
            lo = int(self._eval(s.lo))
            hi = int(self._eval(s.hi))
            step = int(self._eval(s.step))
            try:
                for i in range(lo, hi, step):
                    self.env[s.var] = i
                    self._exec_body(s.body)
            except _BreakSignal:
                pass
        elif isinstance(s, N.While):
            try:
                while self._truth(self._eval(s.cond)):
                    self._exec_body(s.body)
            except _BreakSignal:
                pass
        elif isinstance(s, N.If):
            if self._truth(self._eval(s.cond)):
                self._exec_body(s.then)
            else:
                self._exec_body(s.orelse)
        elif isinstance(s, N.Break):
            raise _BreakSignal()
        elif isinstance(s, N.Return):
            raise _ReturnSignal(self._eval(s.value))
        elif isinstance(s, N.ReturnTuple):
            raise _ReturnSignal(tuple(self._eval(v) for v in s.values))
        elif isinstance(s, N.ExprStmt):
            self._eval(s.value)
        else:
            raise ExecutionError(
                f"{self.fn.name}: interpreter cannot execute "
                f"{type(s).__name__} (adjoint-only node?)"
            )

    @staticmethod
    def _truth(v: object) -> bool:
        return bool(v)

    # -- stores -----------------------------------------------------------------
    def _store_round(self, name: str, v: object) -> object:
        dt = self.var_dtypes.get(name, DType.F64)
        if dt.is_float and isinstance(v, float):
            return round_to(v, dt)
        return v

    def _store_scalar(
        self, name: str, dt: DType, v: object, value_expr: N.Expr
    ) -> object:
        tgt = N.Name(name)
        tgt.dtype = dt
        self._charge_store(tgt, value_expr)
        if dt.is_float:
            return round_to(float(v), dt)
        if dt is DType.I64:
            return int(v)
        return v

    def _charge_store(self, target: N.LValue, value: N.Expr) -> None:
        tdt = target.dtype or self.var_dtypes.get(
            target.id if isinstance(target, N.Name) else target.base,
            DType.F64,
        )
        vdt = value.dtype or DType.F64
        if self.cost_model is not None:
            cm = self.cost_model
            self.cycles += (
                cm.array_access[tdt]
                if isinstance(target, N.Index)
                else cm.scalar_store[tdt]
            )
            if vdt.is_float and tdt.is_float and vdt is not tdt:
                self.cycles += cm.cast
        if self.casts is not None and vdt.is_float and tdt.is_float:
            self.casts.record(vdt, tdt)

    # -- expressions --------------------------------------------------------
    def _eval(self, e: N.Expr) -> object:
        if isinstance(e, N.Const):
            return e.value
        if isinstance(e, N.Name):
            try:
                return self.env[e.id]
            except KeyError as exc:
                raise ExecutionError(
                    f"{self.fn.name}: undefined variable {e.id!r}"
                ) from exc
        if isinstance(e, N.Index):
            arr = self.env[e.base]
            idx = int(self._eval(e.index))
            if self.cost_model is not None:
                self.cycles += self.cost_model.array_access[
                    e.dtype or DType.F64
                ]
            return float(arr[idx])
        if isinstance(e, N.BinOp):
            return self._eval_binop(e)
        if isinstance(e, N.UnaryOp):
            v = self._eval(e.operand)
            if self.cost_model is not None:
                self.cost_model_charge_negate()
            return (not v) if e.op == "not" else -v
        if isinstance(e, N.Call):
            return self._eval_call(e)
        if isinstance(e, N.Cast):
            v = self._eval(e.operand)
            src = e.operand.dtype or DType.F64
            if e.to.is_float:
                if self.casts is not None and src.is_float:
                    self.casts.record(src, e.to)
                if (
                    self.cost_model is not None
                    and src.is_float
                    and src is not e.to
                ):
                    self.cycles += self.cost_model.cast
                return round_to(float(v), e.to)
            if e.to is DType.I64:
                return int(v)
            return bool(v)
        raise ExecutionError(
            f"{self.fn.name}: unknown expression {type(e).__name__}"
        )

    def cost_model_charge_negate(self) -> None:
        self.cycles += self.cost_model.negate  # type: ignore[union-attr]

    def _eval_binop(self, e: N.BinOp) -> object:
        op = e.op
        if op == "and":
            lv = self._eval(e.left)
            if not lv:
                return False
            return bool(self._eval(e.right))
        if op == "or":
            lv = self._eval(e.left)
            if lv:
                return True
            return bool(self._eval(e.right))
        left = self._eval(e.left)
        right = self._eval(e.right)
        if self.cost_model is not None:
            cm = self.cost_model
            dt = e.dtype or DType.F64
            self.cycles += cm.binop_cost(op, dt)
            for side in (e.left, e.right):
                sd = side.dtype or DType.F64
                if sd.is_float and dt.is_float and sd is not dt:
                    self.cycles += cm.cast
        if op in N.CMPOPS:
            return _compare(op, left, right)
        try:
            if op == "+":
                v = left + right
            elif op == "-":
                v = left - right
            elif op == "*":
                v = left * right
            elif op == "/":
                v = left / right
            elif op == "//":
                v = left // right
            elif op == "%":
                v = left % right
            else:
                raise ExecutionError(f"unknown operator {op!r}")
        except ZeroDivisionError as exc:
            raise ExecutionError(
                f"{self.fn.name}: division by zero at line {e.loc}"
            ) from exc
        dt = e.dtype or DType.F64
        if dt.is_float and isinstance(v, float):
            return round_to(v, dt)
        return v

    def _eval_call(self, e: N.Call) -> object:
        info = INTRINSICS[e.fn]
        args = [self._eval(a) for a in e.args]
        if self.cost_model is not None:
            self.cycles += self.cost_model.call_cost(
                e.fn, e.dtype or DType.F64, self.approx
            )
        if e.fn in self.approx and info.approx_impl is not None:
            impl: Callable = info.approx_impl
        else:
            impl = info.impl
        try:
            v = impl(*[float(a) for a in args])
        except (ValueError, OverflowError) as exc:
            raise ExecutionError(
                f"{self.fn.name}: {e.fn}({args}) failed: {exc}"
            ) from exc
        dt = e.dtype or DType.F64
        if dt.is_float:
            return round_to(float(v), dt)
        return v


def _compare(op: str, left: object, right: object) -> bool:
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def run_function(
    fn: N.Function,
    args: Sequence[object],
    approx: Optional[Set[str]] = None,
    cost_model: Optional[CostModel] = None,
    cast_counter: Optional[CastCounter] = None,
) -> object:
    """Convenience wrapper: build an :class:`Interpreter` and run it."""
    interp = Interpreter(
        fn, approx=approx, cost_model=cost_model, cast_counter=cast_counter
    )
    return interp.run(args)
