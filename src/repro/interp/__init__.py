"""Execution substrate: reference interpreter and the performance model.

The tree-walking interpreter (:mod:`repro.interp.interpreter`) is the
semantic ground truth against which generated code is tested, and the
engine used for mixed-precision "actual error" validation runs on small
sizes.  The cost model (:mod:`repro.interp.cost_model`) assigns simulated
cycle costs to every operation by precision — the substitute for the
hardware float/double speed difference that pure Python cannot express
(see DESIGN.md, substitution table).
"""

from repro.interp.interpreter import run_function, Interpreter
from repro.interp.cost_model import CostModel, DEFAULT_COST_MODEL, static_function_cost

__all__ = [
    "run_function",
    "Interpreter",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "static_function_cost",
]
