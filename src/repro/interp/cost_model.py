"""Simulated performance model.

Pure Python cannot observe the speed difference between binary32 and
binary64 arithmetic, so — per the substitution rule in DESIGN.md — the
paper's *performance* axis is modelled with per-operation cycle costs
that reflect typical superscalar CPU behaviour:

* arithmetic on narrower floats is cheaper (f32 ≈ half of f64),
* memory traffic scales with element width (array load/store costs),
* implicit precision casts cost cycles (this is what erases the benefit
  of demoting only ``attributes`` in k-Means, reproducing Table I's
  "no speedup" row),
* approximate FastApprox intrinsics are much cheaper than libm calls
  (driving the Black-Scholes speedups in Table IV).

Costs are relative cycles; only ratios matter for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.frontend.intrinsics import INTRINSICS
from repro.ir import nodes as N
from repro.ir.types import DType


def _per_dtype(f64: float, f32: float, f16: float) -> Dict[DType, float]:
    return {
        DType.F64: f64,
        DType.F32: f32,
        DType.F16: f16,
        DType.I64: min(f32, 1.0) if f32 < 1 else 1.0,
        DType.B1: 0.5,
    }


@dataclass
class CostModel:
    """Per-operation cycle cost tables, keyed by dtype."""

    add: Dict[DType, float] = field(
        default_factory=lambda: _per_dtype(4.0, 2.0, 1.5)
    )
    mul: Dict[DType, float] = field(
        default_factory=lambda: _per_dtype(5.0, 2.5, 2.0)
    )
    div: Dict[DType, float] = field(
        default_factory=lambda: _per_dtype(22.0, 11.0, 8.0)
    )
    compare: float = 1.0
    boolean: float = 0.5
    negate: float = 1.0
    cast: float = 3.0
    #: reading/writing one array element (memory traffic by width)
    array_access: Dict[DType, float] = field(
        default_factory=lambda: _per_dtype(4.0, 2.0, 1.0)
    )
    #: writing a scalar variable
    scalar_store: Dict[DType, float] = field(
        default_factory=lambda: _per_dtype(1.0, 0.5, 0.5)
    )

    def binop_cost(self, op: str, dtype: DType) -> float:
        """Cycle cost of one binary operation at ``dtype``."""
        if op in N.CMPOPS:
            return self.compare
        if op in N.BOOLOPS:
            return self.boolean
        if op in ("+", "-"):
            return self.add[dtype]
        if op == "*":
            return self.mul[dtype]
        if op in ("/", "//", "%"):
            return self.div[dtype]
        raise KeyError(op)

    def call_cost(self, fname: str, dtype: DType, approx: Optional[Set[str]] = None) -> float:
        """Cycle cost of one intrinsic call.

        :param approx: names for which the FastApprox variant is in use.
        """
        info = INTRINSICS[fname]
        if approx and fname in approx and info.approx_impl is not None:
            return info.approx_cost
        table = info.cost
        if dtype in table:
            return table[dtype]
        return table[DType.F64]


#: Shared default model used by all experiments.
DEFAULT_COST_MODEL = CostModel()


# --------------------------------------------------------------------------
# Static expression/statement costing (used by the counting code variant)
# --------------------------------------------------------------------------


def expr_cost(
    e: N.Expr,
    model: CostModel,
    approx: Optional[Set[str]] = None,
) -> float:
    """Static cycle cost of evaluating ``e`` once.

    Implicit promotion casts are charged whenever an operand's dtype
    differs from the operation's dtype (integer→float conversions on
    loop indices are free — they compile to register moves).
    """
    if isinstance(e, N.Const):
        return 0.0
    if isinstance(e, N.Name):
        return 0.0
    if isinstance(e, N.Index):
        return expr_cost(e.index, model, approx) + model.array_access[
            e.dtype or DType.F64
        ]
    if isinstance(e, N.BinOp):
        c = expr_cost(e.left, model, approx) + expr_cost(e.right, model, approx)
        op_dtype = e.dtype or DType.F64
        if e.op in N.CMPOPS or e.op in N.BOOLOPS:
            return c + model.binop_cost(e.op, op_dtype)
        c += model.binop_cost(e.op, op_dtype)
        for side in (e.left, e.right):
            sd = side.dtype or DType.F64
            if sd.is_float and op_dtype.is_float and sd is not op_dtype:
                c += model.cast
        return c
    if isinstance(e, N.UnaryOp):
        return expr_cost(e.operand, model, approx) + model.negate
    if isinstance(e, N.Call):
        c = sum(expr_cost(a, model, approx) for a in e.args)
        return c + model.call_cost(e.fn, e.dtype or DType.F64, approx)
    if isinstance(e, N.Cast):
        inner = expr_cost(e.operand, model, approx)
        src = e.operand.dtype or DType.F64
        if src.is_float and e.to.is_float and src is not e.to:
            inner += model.cast
        return inner
    raise TypeError(type(e).__name__)


def store_cost(
    target: N.LValue, value: N.Expr, model: CostModel
) -> float:
    """Cost of storing ``value`` into ``target``, incl. demotion casts."""
    tdt = target.dtype or DType.F64
    c = (
        model.array_access[tdt]
        if isinstance(target, N.Index)
        else model.scalar_store[tdt]
    )
    vdt = value.dtype or DType.F64
    if vdt.is_float and tdt.is_float and vdt is not tdt:
        c += model.cast
    return c


def static_function_cost(
    fn: N.Function,
    trip_counts: Dict[str, float],
    model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> float:
    """Estimate total cycles for one invocation of ``fn``.

    ``trip_counts`` maps loop variables (for ``For``) or synthetic keys
    ``"while@<line>"`` (for ``While``) to expected trip counts; missing
    entries default to the statically-evaluable range when constant,
    else 1.  Branches are costed as the mean of both arms.

    This is the quick analytical estimator; the dynamic counting variant
    produced by the code generator is exact.
    """
    return _body_cost(fn.body, trip_counts, model, approx)


def _body_cost(body, trips, model, approx) -> float:
    total = 0.0
    for s in body:
        total += _stmt_cost(s, trips, model, approx)
    return total


def _stmt_cost(s: N.Stmt, trips, model, approx) -> float:
    if isinstance(s, N.VarDecl):
        if s.init is None:
            return 0.0
        c = expr_cost(s.init, model, approx)
        tgt = N.Name(s.name)
        tgt.dtype = s.dtype
        return c + store_cost(tgt, s.init, model)
    if isinstance(s, N.Assign):
        return expr_cost(s.value, model, approx) + store_cost(
            s.target, s.value, model
        )
    if isinstance(s, N.For):
        n = trips.get(s.var)
        if n is None:
            n = _static_trip(s)
        inner = _body_cost(s.body, trips, model, approx)
        return n * (inner + 1.0) + expr_cost(s.hi, model, approx)
    if isinstance(s, N.While):
        key = f"while@{s.loc}"
        n = trips.get(key, 1.0)
        inner = _body_cost(s.body, trips, model, approx) + expr_cost(
            s.cond, model, approx
        )
        return n * inner
    if isinstance(s, N.If):
        c = expr_cost(s.cond, model, approx)
        t = _body_cost(s.then, trips, model, approx)
        e = _body_cost(s.orelse, trips, model, approx)
        return c + 0.5 * (t + e)
    if isinstance(s, (N.Return, N.ExprStmt)):
        return expr_cost(s.value, model, approx)
    if isinstance(s, N.ReturnTuple):
        return sum(expr_cost(v, model, approx) for v in s.values)
    return 0.0


def static_config_cost(
    fn: N.Function,
    config,
    trip_counts: Optional[Dict[str, float]] = None,
    model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> float:
    """Static cycle estimate of ``fn`` under a precision configuration.

    Applies the configuration to a clone of the IR (dtype re-inference
    places the promotion casts the cost model charges) and costs it
    analytically — nothing is compiled or executed.

    :param config: a :class:`repro.tuning.PrecisionConfig` (empty/falsy
        configs cost the reference itself).
    """
    # local import: repro.tuning.validate imports this module at load
    from repro.tuning.config import apply_precision

    mixed = apply_precision(fn, config) if config else fn
    return static_function_cost(mixed, trip_counts or {}, model, approx)


def config_cycle_delta(
    fn: N.Function,
    config,
    trip_counts: Optional[Dict[str, float]] = None,
    model: CostModel = DEFAULT_COST_MODEL,
    approx: Optional[Set[str]] = None,
) -> float:
    """Per-config cycle delta versus the uniform-f64 reference.

    ``static_config_cost(fn, config) - static_function_cost(fn)``,
    computed without recompiling (or rerunning) the reference: demotion
    savings are negative, cast-dominated configurations (the k-Means
    "no speedup" effect) come out positive.  This is the cheap analytic
    screen — the exact per-config numbers come from the counting run
    the candidate evaluator performs.
    """
    trips = trip_counts or {}
    return static_config_cost(
        fn, config, trips, model, approx
    ) - static_function_cost(fn, trips, model, approx)


def _static_trip(s: N.For) -> float:
    if (
        isinstance(s.lo, N.Const)
        and isinstance(s.hi, N.Const)
        and isinstance(s.step, N.Const)
    ):
        lo, hi, step = s.lo.value, s.hi.value, s.step.value
        if step > 0 and hi > lo:
            return float((hi - lo + step - 1) // step)
        return 0.0
    return 1.0
