"""repro.obs — the unified observability layer.

Three pieces, used together or alone:

* :mod:`repro.obs.trace` — span-based structured tracing to
  append-only JSONL (``trace.enable(path)`` /
  ``with trace.span("search.batch", k=32): ...``), a zero-cost no-op
  while disabled;
* :mod:`repro.obs.metrics` — the process-wide :data:`~repro.obs.metrics.REGISTRY`
  of counters/gauges/bounded histograms that every subsystem's stat
  dict is a view over, with Prometheus text exposition
  (``/v1/metrics?format=prom``);
* :mod:`repro.obs.profile` — span-tree aggregation into per-phase
  time breakdowns (``python -m repro trace --summarize``,
  ``SearchResult.profile``).

See the README "Observability" section for the trace record format,
the metric name glossary, and a ``--trace`` walkthrough.
"""

from repro.obs import metrics, profile, trace
from repro.obs.metrics import REGISTRY, MetricsRegistry, render_prom
from repro.obs.profile import format_summary, load_trace, summarize_records
from repro.obs.trace import Span, Tracer

__all__ = [
    "trace",
    "metrics",
    "profile",
    "REGISTRY",
    "MetricsRegistry",
    "render_prom",
    "load_trace",
    "summarize_records",
    "format_summary",
    "Span",
    "Tracer",
]
