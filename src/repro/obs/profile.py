"""Trace profiling: span trees → per-phase time breakdowns.

Consumes the JSONL records :mod:`repro.obs.trace` emits (from a file
via :func:`load_trace`, or in memory via ``trace.collect()``) and
aggregates them into the per-phase report behind
``python -m repro trace --summarize`` and ``SearchResult.profile``.

The key quantity is **self time** (exclusive time): a span's duration
minus the summed durations of its direct children.  Self times
partition wall-clock exactly — summed over every span in a tree they
equal the root span's duration — so "compile vs evaluate vs checkpoint
vs merge" breakdowns add up instead of double-counting nested work.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "load_trace",
    "summarize_records",
    "format_summary",
]

Record = Dict[str, object]


def load_trace(path: Union[str, Path]) -> List[Record]:
    """Parse a JSONL trace file into a list of span records.

    Raises ``ValueError`` naming the offending line when any line is
    not valid JSON or lacks the mandatory span fields — the validation
    the CI ``trace-smoke`` job leans on.
    """
    records: List[Record] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSON in trace: {exc}"
                ) from exc
            if not isinstance(rec, dict):
                raise ValueError(
                    f"{path}:{lineno}: trace record is not an object"
                )
            for field in ("name", "span", "dur_s", "t_start"):
                if field not in rec:
                    raise ValueError(
                        f"{path}:{lineno}: trace record missing {field!r}"
                    )
            records.append(rec)
    return records


def summarize_records(
    records: Iterable[Record],
    root: Optional[str] = None,
) -> Dict[str, object]:
    """Aggregate span records into a per-phase time breakdown.

    :param records: finished-span records (file or collector order —
        children appear before their parents, but order is not
        assumed).
    :param root: restrict the summary to the subtree under this span
        id (e.g. a ``search.run`` span inside a larger serve trace);
        default is every span in the trace.

    Returns::

        {
          "spans": <int>,                 # spans summarized
          "errors": <int>,                # spans with error status
          "total_s": <float>,             # summed root-span durations
          "phases": {                     # keyed by span name,
            name: {                       # ordered by self_s desc
              "count": <int>,
              "total_s": <float>,         # inclusive
              "self_s": <float>,          # exclusive — sums to total_s
            }, ...
          },
        }

    ``total_s`` is the summed duration of the summarized roots, and
    the ``self_s`` column sums to it exactly (up to float rounding).
    """
    recs = [dict(r) for r in records]
    by_id: Dict[str, Record] = {}
    for r in recs:
        span_id = r.get("span")
        if isinstance(span_id, str):
            by_id[span_id] = r

    if root is not None:
        selected = _subtree(recs, by_id, root)
    else:
        selected = recs

    child_sum: Dict[str, float] = {}
    for r in selected:
        parent = r.get("parent")
        if isinstance(parent, str):
            child_sum[parent] = child_sum.get(parent, 0.0) + float(
                r.get("dur_s", 0.0)
            )

    selected_ids = {
        r["span"] for r in selected if isinstance(r.get("span"), str)
    }
    phases: Dict[str, Dict[str, float]] = {}
    total_s = 0.0
    errors = 0
    for r in selected:
        name = str(r.get("name", "?"))
        dur = float(r.get("dur_s", 0.0))
        self_s = max(0.0, dur - child_sum.get(str(r.get("span")), 0.0))
        phase = phases.setdefault(
            name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        phase["count"] += 1
        phase["total_s"] += dur
        phase["self_s"] += self_s
        status = str(r.get("status", "ok"))
        if status.startswith("error"):
            errors += 1
        parent = r.get("parent")
        is_root = not (isinstance(parent, str) and parent in selected_ids)
        if is_root:
            total_s += dur

    ordered = dict(
        sorted(phases.items(), key=lambda kv: kv[1]["self_s"], reverse=True)
    )
    return {
        "spans": len(selected),
        "errors": errors,
        "total_s": total_s,
        "phases": ordered,
    }


def _subtree(
    recs: List[Record], by_id: Dict[str, Record], root: str
) -> List[Record]:
    """Records in the subtree rooted at span id ``root`` (inclusive),
    found by walking each record's parent chain."""
    member: Dict[str, bool] = {root: True}

    def in_subtree(span_id: str) -> bool:
        chain: List[str] = []
        cur: Optional[str] = span_id
        while isinstance(cur, str) and cur not in member:
            chain.append(cur)
            rec = by_id.get(cur)
            cur = rec.get("parent") if rec is not None else None  # type: ignore[assignment]
        verdict = bool(isinstance(cur, str) and member.get(cur, False))
        for sid in chain:
            member[sid] = verdict
        return verdict

    out: List[Record] = []
    for r in recs:
        span_id = r.get("span")
        if isinstance(span_id, str) and in_subtree(span_id):
            out.append(r)
    return out


def format_summary(summary: Dict[str, object]) -> str:
    """Render a :func:`summarize_records` result as an aligned text
    table (the ``python -m repro trace --summarize`` output)."""
    phases = summary.get("phases", {})
    assert isinstance(phases, dict)
    total_s = float(summary.get("total_s", 0.0))  # type: ignore[arg-type]
    lines = [
        f"spans: {summary.get('spans', 0)}   "
        f"errors: {summary.get('errors', 0)}   "
        f"total: {total_s:.4f}s",
        f"{'phase':<28} {'count':>7} {'self_s':>10} "
        f"{'total_s':>10} {'self%':>7}",
    ]
    for name, st in phases.items():
        self_s = float(st["self_s"])
        pct = (100.0 * self_s / total_s) if total_s > 0 else 0.0
        lines.append(
            f"{name:<28} {int(st['count']):>7} {self_s:>10.4f} "
            f"{float(st['total_s']):>10.4f} {pct:>6.1f}%"
        )
    self_sum = sum(float(st["self_s"]) for st in phases.values())
    lines.append(f"{'(self-time sum)':<28} {'':>7} {self_sum:>10.4f}")
    return "\n".join(lines)
