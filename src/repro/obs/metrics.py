"""Process-wide metrics registry: counters, gauges, bounded histograms.

One :class:`MetricsRegistry` (the module-level :data:`REGISTRY`) is the
single store every subsystem's telemetry folds into.  The historical
per-subsystem stat dicts (``estimator_memo_stats()``,
``config_kernel_cache_stats()``, serve's ``ServiceMetrics``, …) are now
*views* over this registry — same dict shapes, one source of truth.

Metric naming follows the Prometheus convention the exposition format
implies: ``repro_<subsystem>_<what>_total`` for counters,
``repro_<subsystem>_<what>`` for gauges, ``repro_<what>_seconds`` for
timing histograms.  See the README "Observability" section for the
full glossary.

All three instrument types are thread-safe (one registry-wide lock;
increments are cheap enough that finer locking buys nothing at this
call rate) and fork-inherited counters simply diverge per process, the
same contract as the rest of the process-wide caches.

Histograms are **bounded**: they keep running ``count``/``sum``/``max``
exactly, plus a fixed-size reservoir of the most recent observations
from which ``p50``/``p95`` are estimated — memory stays O(1) no matter
how long the process serves.

Quick use::

    from repro.obs import metrics

    metrics.REGISTRY.counter("repro_memo_hits_total").inc()
    metrics.REGISTRY.histogram("repro_search_batch_seconds").observe(dt)
    print(metrics.render_prom())
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "render_prom",
]


class Counter:
    """A monotonically increasing count (resettable only via the
    registry, for cache-clear and test-isolation semantics)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        self.name = name
        self.help = help
        self._value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that goes up and down (sizes, capacities, occupancy)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        self.name = name
        self.help = help
        self._value: float = 0
        self._lock = lock

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (default 1) to the gauge."""
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        """Subtract ``n`` (default 1) from the gauge."""
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Histogram:
    """Bounded distribution summary: exact count/sum/max, reservoir
    p50/p95.

    Keeps the last ``maxlen`` observations (default 1024) in a deque;
    quantiles are computed over that window on demand.  ``count``,
    ``sum`` and ``max`` are exact over the histogram's whole lifetime.
    """

    __slots__ = ("name", "help", "_window", "_count", "_sum", "_max", "_lock")

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        maxlen: int = 1024,
    ) -> None:
        self.name = name
        self.help = help
        self._window: Deque[float] = deque(maxlen=maxlen)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            self._window.append(value)

    def snapshot(self) -> Dict[str, float]:
        """``{"count", "sum", "max", "p50", "p95"}`` at this instant."""
        with self._lock:
            window = sorted(self._window)
            count, total, mx = self._count, self._sum, self._max
        p50 = _quantile(window, 0.50)
        p95 = _quantile(window, 0.95)
        return {
            "count": count,
            "sum": total,
            "max": mx,
            "p50": p50,
            "p95": p95,
        }

    def _reset(self) -> None:
        with self._lock:
            self._window.clear()
            self._count = 0
            self._sum = 0.0
            self._max = 0.0


def _quantile(ordered: List[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list (0.0 if empty)."""
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and histograms.

    Instruments are created on first reference (``counter(name)`` etc.
    are get-or-create) so call sites need no registration ceremony;
    referencing an existing name with a different instrument type
    raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                self._check_free(name, "counter")
                c = Counter(name, help, self._lock)
                self._counters[name] = c
            return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                self._check_free(name, "gauge")
                g = Gauge(name, help, self._lock)
                self._gauges[name] = g
            return g

    def histogram(
        self, name: str, help: str = "", maxlen: int = 1024
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                self._check_free(name, "histogram")
                h = Histogram(name, help, self._lock, maxlen=maxlen)
                self._histograms[name] = h
            return h

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dump: every instrument's current value, sorted by
        name — ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}``."""
        with self._lock:
            counters = {n: c.value for n, c in sorted(self._counters.items())}
            gauges = {n: g.value for n, g in sorted(self._gauges.items())}
            hists = {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": hists}

    def render_prom(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry.

        Counters/gauges render as single samples; histograms render as
        summaries (``_count``/``_sum``/``_max`` plus ``quantile``-
        labelled p50/p95 samples).
        """
        lines: List[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            hists = sorted(self._histograms.items())
        for name, c in counters:
            if c.help:
                lines.append(f"# HELP {name} {c.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {c.value}")
        for name, g in gauges:
            if g.help:
                lines.append(f"# HELP {name} {g.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(g.value)}")
        for name, h in hists:
            snap = h.snapshot()
            if h.help:
                lines.append(f"# HELP {name} {h.help}")
            lines.append(f"# TYPE {name} summary")
            lines.append(f'{name}{{quantile="0.5"}} {_fmt(snap["p50"])}')
            lines.append(f'{name}{{quantile="0.95"}} {_fmt(snap["p95"])}')
            lines.append(f"{name}_sum {_fmt(snap['sum'])}")
            lines.append(f"{name}_count {int(snap['count'])}")
            lines.append(f"{name}_max {_fmt(snap['max'])}")
        return "\n".join(lines) + "\n"

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero every instrument (or only those whose name starts with
        ``prefix``).  Instruments stay registered; used by the cache
        ``clear_*`` helpers and test isolation."""
        with self._lock:
            tables: Tuple[Dict[str, object], ...] = (
                self._counters,
                self._gauges,
                self._histograms,
            )
            for table in tables:
                for name, instrument in table.items():
                    if prefix is None or name.startswith(prefix):
                        instrument._reset()  # type: ignore[attr-defined]


#: the process-wide registry every subsystem folds its telemetry into
REGISTRY = MetricsRegistry()


def render_prom() -> str:
    """Prometheus text exposition of the process-wide :data:`REGISTRY`."""
    return REGISTRY.render_prom()


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))
