"""Span-based structured tracing: append-only JSONL, zero-cost when off.

A **span** is one timed region of work with a name, key/value
attributes, and causality links::

    from repro.obs import trace

    trace.enable("run.trace.jsonl")
    with trace.span("search.batch", k=32, run_id=run_id):
        evaluate_pool(...)
    trace.disable()

Every span that *finishes* appends exactly one JSON line to the trace
file, carrying:

* ``span`` / ``parent`` — span ids; the parent is the innermost open
  span **on the same thread** (a thread-local stack), so nested
  ``with`` blocks reconstruct into a tree offline;
* ``t_start`` / ``dur_s`` — monotonic (``perf_counter``) start offset
  from the tracer's epoch plus duration, immune to wall-clock steps;
  ``ts`` is the wall-clock start for human correlation;
* ``thread`` / ``pid`` — writer attribution: forked search workers
  inherit the tracer and append to the same file, and their records
  are distinguished by pid;
* ``status`` — ``"ok"``, or ``"error:<ExcType>"`` when the traced
  block raised (the exception still propagates).

Write discipline: the trace file is opened ``O_APPEND`` and every
record is a single ``os.write`` of one complete line, so concurrent
writers (threads of one process, or forked worker processes sharing
the inherited descriptor) never interleave partial lines — the file is
valid JSONL at every instant, the append-only analogue of the run
store's ``mkstemp`` + ``os.replace`` discipline for rewritten files.

Disabled mode is the default and costs nearly nothing: ``span(...)``
checks one module-level flag and returns a shared no-op singleton — no
tracer object, no record, no allocation attributable to this module.
Hot loops that build expensive attribute dicts can guard on
:func:`is_enabled` to skip even the argument packing.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
    "current",
    "span",
    "collect",
    "NULL_SPAN",
]

#: a finished-span record, as handed to sinks (JSON-expressible)
Record = Dict[str, object]
Sink = Callable[[Record], None]


class Span:
    """One open traced region; a context manager emitting on exit."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "status",
        "t_start",
        "ts",
        "dur_s",
        "_tracer",
        "_stack",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.status = "ok"
        self.parent_id: Optional[str] = None
        self.t_start = 0.0
        self.ts = 0.0
        self.dur_s = 0.0
        self._stack: Optional[List["Span"]] = None

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self._stack = stack
        self.ts = time.time()
        self.t_start = time.perf_counter() - self._tracer.epoch
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.dur_s = (
            time.perf_counter() - self._tracer.epoch - self.t_start
        )
        if exc_type is not None:
            self.status = f"error:{getattr(exc_type, '__name__', exc_type)}"
        stack = self._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif stack is not None:  # pragma: no cover - defensive
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._tracer._emit(self)
        return False  # never swallow the exception


class _NullSpan:
    """The shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


#: module-level singleton: ``span()`` in disabled mode always returns
#: this exact object (the zero-allocation fast path)
NULL_SPAN = _NullSpan()


class Tracer:
    """Owns the trace file, the sinks, and the per-thread span stacks.

    :param path: JSONL trace file to append finished spans to
        (``None``: sinks only — e.g. an in-memory :func:`collect`).
    """

    def __init__(self, path: Union[None, str, Path] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.trace_id = f"tr-{uuid.uuid4().hex[:12]}"
        #: monotonic epoch all ``t_start`` offsets are relative to
        self.epoch = time.perf_counter()
        self._epoch_ts = time.time()
        self._fd: Optional[int] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
        self._lock = threading.Lock()
        self._sinks: List[Sink] = []
        self._local = threading.local()
        self._counter = itertools.count()

    # -- internals -----------------------------------------------------------
    def _next_id(self) -> str:
        # the pid component keeps ids unique across forked workers
        # that inherited (and keep advancing) the same counter
        return f"sp-{os.getpid():x}-{next(self._counter):06d}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _emit(self, sp: Span) -> None:
        record: Record = {
            "name": sp.name,
            "span": sp.span_id,
            "parent": sp.parent_id,
            "trace": self.trace_id,
            "pid": os.getpid(),
            "thread": threading.get_ident(),
            "ts": sp.ts,
            "t_start": round(sp.t_start, 9),
            "dur_s": round(sp.dur_s, 9),
            "status": sp.status,
        }
        if sp.attrs:
            record["attrs"] = sp.attrs
        line: Optional[bytes] = None
        if self._fd is not None:
            try:
                line = (
                    json.dumps(record, default=str) + "\n"
                ).encode("utf-8")
            except (TypeError, ValueError):  # pragma: no cover
                record.pop("attrs", None)
                line = (json.dumps(record) + "\n").encode("utf-8")
        with self._lock:
            if self._fd is not None and line is not None:
                # one complete line per write: O_APPEND keeps
                # concurrent writers from interleaving partial records
                os.write(self._fd, line)
            for sink in self._sinks:
                sink(record)

    # -- public --------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """Open a span (use as a context manager)."""
        return Span(self, name, attrs)

    def add_sink(self, sink: Sink) -> None:
        """Subscribe ``sink`` to every finished-span record."""
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    def close(self) -> None:
        """Close the trace file (sinks stay; idempotent)."""
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:  # pragma: no cover
                    pass
                self._fd = None


# -- module-level tracer -------------------------------------------------------

_STATE_LOCK = threading.Lock()
_TRACER: Optional[Tracer] = None


def enable(path: Union[None, str, Path] = None) -> Tracer:
    """Install (and return) the process-wide tracer.

    ``path`` is the JSONL trace file to append to (``None``: in-memory
    sinks only).  Replaces any previously enabled tracer (which is
    closed first).
    """
    global _TRACER
    with _STATE_LOCK:
        if _TRACER is not None:
            _TRACER.close()
        _TRACER = Tracer(path)
        return _TRACER


def disable() -> None:
    """Tear the process-wide tracer down (no-op when already off)."""
    global _TRACER
    with _STATE_LOCK:
        if _TRACER is not None:
            _TRACER.close()
            _TRACER = None


def is_enabled() -> bool:
    """Whether a process-wide tracer is installed."""
    return _TRACER is not None


def current() -> Optional[Tracer]:
    """The installed tracer, or ``None``."""
    return _TRACER


def span(name: str, **attrs: object):
    """A span on the process-wide tracer — or the shared no-op
    singleton when tracing is disabled (the fast path)."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


class collect:
    """Context manager collecting finished-span records in memory.

    Attaches a list sink to the *current* tracer for its scope::

        with trace.collect() as records:
            run_search(...)
        profile = summarize_records(records)

    With tracing disabled the collected list simply stays empty (the
    context is still safe to enter), so callers need no mode check.
    """

    def __init__(self) -> None:
        self.records: List[Record] = []
        self._tracer: Optional[Tracer] = None

    def __enter__(self) -> List[Record]:
        self._tracer = _TRACER
        if self._tracer is not None:
            self._tracer.add_sink(self.records.append)
        return self.records

    def __exit__(self, *exc: object) -> bool:
        if self._tracer is not None:
            self._tracer.remove_sink(self.records.append)
            self._tracer = None
        return False
