"""Constant folding and algebraic simplification.

Rewrites (value-preserving on finite inputs; exprs in this IR are pure):

* ``Const ∘ Const`` → folded constant (including comparisons),
* ``x * 1`` / ``1 * x`` / ``x / 1`` → ``x``,
* ``x + 0`` / ``0 + x`` / ``x - 0`` → ``x``,
* ``0 - x`` and double negation → ``-x`` / ``x``,
* ``-Const`` → negated constant, ``fabs(Const)`` → folded,
* casts of constants → rounded constants,
* ``fabs(fabs(x))`` → ``fabs(x)``.

The adjoint generator leans on this heavily: seeds multiplied by unit
partials produce long ``_t * 1.0`` chains that fold away.
"""

from __future__ import annotations

from typing import Optional

from repro.fp.precision import round_to
from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.visitor import Transformer


def _const_value(e: N.Expr) -> Optional[float]:
    if isinstance(e, N.Const) and not isinstance(e.value, bool):
        return e.value  # type: ignore[return-value]
    return None


def _is_const(e: N.Expr, v: float) -> bool:
    c = _const_value(e)
    return c is not None and float(c) == v


class _Folder(Transformer):
    def __init__(self) -> None:
        self.changed = False

    def _mark(self, new: N.Expr, old: N.Expr) -> N.Expr:
        self.changed = True
        if new.dtype is None:
            new.dtype = old.dtype
        return new

    def visit_BinOp(self, e: N.BinOp) -> N.Expr:
        e.left = self.visit(e.left)
        e.right = self.visit(e.right)
        lv, rv = _const_value(e.left), _const_value(e.right)
        op = e.op
        if lv is not None and rv is not None and op in N.BINOPS:
            try:
                folded = _apply(op, lv, rv)
            except (ZeroDivisionError, OverflowError):
                return e
            c = b.const(folded)
            c.dtype = e.dtype
            return self._mark(c, e)
        if lv is not None and rv is not None and op in N.CMPOPS:
            c = b.const(bool(_apply_cmp(op, lv, rv)))
            return self._mark(c, e)
        if op == "*":
            if _is_const(e.right, 1.0):
                return self._mark(e.left, e)
            if _is_const(e.left, 1.0):
                return self._mark(e.right, e)
            if _is_const(e.right, -1.0):
                return self._mark(b.neg(e.left), e)
            if _is_const(e.left, -1.0):
                return self._mark(b.neg(e.right), e)
        elif op == "+":
            if _is_const(e.right, 0.0):
                return self._mark(e.left, e)
            if _is_const(e.left, 0.0):
                return self._mark(e.right, e)
        elif op == "-":
            if _is_const(e.right, 0.0):
                return self._mark(e.left, e)
            if _is_const(e.left, 0.0):
                return self._mark(b.neg(e.right), e)
        elif op == "/":
            if _is_const(e.right, 1.0):
                return self._mark(e.left, e)
        return e

    def visit_UnaryOp(self, e: N.UnaryOp) -> N.Expr:
        e.operand = self.visit(e.operand)
        if e.op == "-":
            cv = _const_value(e.operand)
            if cv is not None:
                c = b.const(-cv)
                c.dtype = e.dtype
                return self._mark(c, e)
            if isinstance(e.operand, N.UnaryOp) and e.operand.op == "-":
                return self._mark(e.operand.operand, e)
        return e

    def visit_Call(self, e: N.Call) -> N.Expr:
        e.args = [self.visit(a) for a in e.args]
        if e.fn == "fabs":
            cv = _const_value(e.args[0])
            if cv is not None:
                c = b.const(abs(cv))
                c.dtype = e.dtype
                return self._mark(c, e)
            inner = e.args[0]
            if isinstance(inner, N.Call) and inner.fn == "fabs":
                return self._mark(inner, e)
            if isinstance(inner, N.UnaryOp) and inner.op == "-":
                # |−x| = |x|
                e.args[0] = inner.operand
                self.changed = True
        return e

    def visit_Cast(self, e: N.Cast) -> N.Expr:
        e.operand = self.visit(e.operand)
        cv = _const_value(e.operand)
        if cv is not None and e.to.is_float:
            c = b.const(float(round_to(float(cv), e.to)))
            c.dtype = e.to
            return self._mark(c, e)
        return e


def _apply(op: str, a: float, b_: float) -> float:
    if op == "+":
        return a + b_
    if op == "-":
        return a - b_
    if op == "*":
        return a * b_
    if op == "/":
        return a / b_
    if op == "//":
        return a // b_
    if op == "%":
        return a % b_
    raise ValueError(op)


def _apply_cmp(op: str, a: float, b_: float) -> bool:
    return {
        "==": a == b_,
        "!=": a != b_,
        "<": a < b_,
        "<=": a <= b_,
        ">": a > b_,
        ">=": a >= b_,
    }[op]


def fold_function(fn: N.Function) -> bool:
    """Fold constants/identities in place; returns True if anything
    changed (callers iterate to a fixpoint)."""
    f = _Folder()
    fn.body = f.visit_body(fn.body)
    return f.changed
