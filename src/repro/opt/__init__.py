"""IR optimization pipeline.

CHEF-FP's central performance claim is that error-estimation code
generated *into the derivative source* becomes a candidate for compiler
optimization.  These passes are our stand-in for Clang ``-O2`` on the
generated adjoint: constant folding and algebraic simplification (the
adjoint generator emits many ``* 1.0`` / ``+ 0.0`` patterns), local
common-subexpression elimination (repeated intrinsic calls across the
partials of one assignment), and dead-code elimination (unused adjoint
stores; dead Pops become PopDiscards to preserve tape alignment).
"""

from repro.opt.pipeline import optimize
from repro.opt.fold import fold_function
from repro.opt.cse import cse_function
from repro.opt.dce import dce_function

__all__ = ["optimize", "fold_function", "cse_function", "dce_function"]
