"""Local common-subexpression elimination for intrinsic calls.

The adjoint of one assignment evaluates the same intrinsic several
times: ``y = sin(x) * cos(x)`` produces partials referencing ``cos(x)``
and ``sin(x)`` again, and the error model adds more.  Intrinsic calls
dominate the cycle budget, so this pass hoists *repeated, identical*
intrinsic calls within a straight-line run of assignments into a
temporary.

Scope is deliberately local (one basic-block run, invalidation on any
write to a referenced variable), which keeps the pass trivially sound
across loops and branches.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.printer import format_expr
from repro.ir.types import DType
from repro.ir.visitor import walk_expr


def _expr_vars(e: N.Expr) -> Set[str]:
    out: Set[str] = set()
    for node in walk_expr(e):
        if isinstance(node, N.Name):
            out.add(node.id)
        elif isinstance(node, N.Index):
            out.add(node.base)
    return out


def _collect_calls(e: N.Expr) -> List[N.Call]:
    return [n for n in walk_expr(e) if isinstance(n, N.Call)]


class _BlockCSE:
    def __init__(self, counter: List[int]) -> None:
        self.counter = counter
        self.changed = False

    def run(self, body: List[N.Stmt]) -> List[N.Stmt]:
        out: List[N.Stmt] = []
        run: List[N.Stmt] = []
        for s in body:
            if isinstance(s, N.Assign) or (
                isinstance(s, N.VarDecl) and s.init is not None
            ):
                run.append(s)
                continue
            out.extend(self._process_run(run))
            run = []
            if isinstance(s, (N.For, N.While)):
                s.body = self.run(s.body)
            elif isinstance(s, N.If):
                s.then = self.run(s.then)
                s.orelse = self.run(s.orelse)
            out.append(s)
        out.extend(self._process_run(run))
        return out

    @staticmethod
    def _value_of(s: N.Stmt) -> N.Expr:
        return s.init if isinstance(s, N.VarDecl) else s.value

    @staticmethod
    def _set_value(s: N.Stmt, e: N.Expr) -> None:
        if isinstance(s, N.VarDecl):
            s.init = e
        else:
            s.value = e

    @staticmethod
    def _target_of(s: N.Stmt) -> str:
        if isinstance(s, N.VarDecl):
            return s.name
        return (
            s.target.id
            if isinstance(s.target, N.Name)
            else s.target.base
        )

    def _process_run(self, run: List[N.Stmt]) -> List[N.Stmt]:
        if len(run) < 2:
            return list(run)
        # count identical calls, tracking invalidation by writes
        counts: Dict[str, int] = {}
        avail: Dict[str, N.Call] = {}
        written: Set[str] = set()
        keys_per_stmt: List[List[str]] = []
        for s in run:
            keys: List[str] = []
            for call in _collect_calls(self._value_of(s)):
                if call.fn == "user_err":
                    continue  # sites are distinct by construction
                if _expr_vars(call) & written:
                    continue
                key = format_expr(call)
                counts[key] = counts.get(key, 0) + 1
                avail.setdefault(key, call)
                keys.append(key)
            keys_per_stmt.append(keys)
            written.add(self._target_of(s))
        hot = {k for k, c in counts.items() if c >= 2}
        if not hot:
            return list(run)
        # second sweep: materialize temps at first occurrence, substitute
        out: List[N.Stmt] = []
        temp_of: Dict[str, str] = {}
        written = set()
        for s in run:
            for call in _collect_calls(self._value_of(s)):
                key = format_expr(call)
                if key in hot and key not in temp_of:
                    if _expr_vars(call) & written:
                        continue
                    self.counter[0] += 1
                    t = f"_cse{self.counter[0]}"
                    temp_of[key] = t
                    decl = N.VarDecl(
                        t, call.dtype or DType.F64, b.clone(call)
                    )
                    out.append(decl)
                    self.changed = True
            self._set_value(
                s, _substitute(self._value_of(s), temp_of, written)
            )
            out.append(s)
            tname = self._target_of(s)
            written.add(tname)
            # invalidate temps whose source vars were just written
            stale = [
                k
                for k in temp_of
                if tname in _expr_vars(_parse_back(avail, k))
            ]
            for k in stale:
                del temp_of[k]
        return out


def _parse_back(avail: Dict[str, N.Call], key: str) -> N.Call:
    return avail[key]


def _substitute(
    e: N.Expr, temp_of: Dict[str, str], written: Set[str]
) -> N.Expr:
    if isinstance(e, N.Call):
        key = format_expr(e)
        t = temp_of.get(key)
        if t is not None:
            return b.name(t, e.dtype or DType.F64)
        e.args = [_substitute(a, temp_of, written) for a in e.args]
        return e
    if isinstance(e, N.BinOp):
        e.left = _substitute(e.left, temp_of, written)
        e.right = _substitute(e.right, temp_of, written)
        return e
    if isinstance(e, N.UnaryOp):
        e.operand = _substitute(e.operand, temp_of, written)
        return e
    if isinstance(e, N.Cast):
        e.operand = _substitute(e.operand, temp_of, written)
        return e
    if isinstance(e, N.Index):
        e.index = _substitute(e.index, temp_of, written)
        return e
    return e


def cse_function(fn: N.Function) -> bool:
    """Hoist repeated intrinsic calls in place; True on change."""
    counter = [0]
    pass_ = _BlockCSE(counter)
    fn.body = pass_.run(fn.body)
    return pass_.changed
