"""Optimization pass pipeline.

Levels mirror a compiler's ``-O`` flags:

* 0 — no optimization (ablation baseline A1 in DESIGN.md),
* 1 — constant folding / algebraic simplification to a fixpoint,
* 2 — folding + local CSE of intrinsic calls + dead-code elimination,
  iterated (DCE exposes folds and vice versa).
"""

from __future__ import annotations

from repro.ir import builder as b
from repro.ir import nodes as N
from repro.ir.typecheck import infer_types
from repro.opt.cse import cse_function
from repro.opt.dce import dce_function
from repro.opt.fold import fold_function

_MAX_ITER = 10


def optimize(fn: N.Function, level: int = 2) -> N.Function:
    """Return an optimized clone of ``fn`` (the input is not mutated)."""
    if level <= 0:
        return fn
    out = b.clone(fn)
    for _ in range(_MAX_ITER):
        changed = fold_function(out)
        if level >= 2:
            changed |= cse_function(out)
            changed |= fold_function(out)
            changed |= dce_function(out)
        if not changed:
            break
    infer_types(out)
    return out
