"""Dead-code elimination.

Removes scalar assignments (and their declarations) whose targets are
never read anywhere in the function — a cheap whole-function
approximation of liveness that is sound for loops (a variable read
*anywhere* is kept everywhere).  Tape alignment is preserved: a ``Pop``
into a dead variable becomes a :class:`~repro.ir.nodes.PopDiscard`
rather than disappearing.

Expressions are pure, so dropping a dead store cannot remove a side
effect (it can only remove a potential domain error that the optimizer
is entitled to remove).
"""

from __future__ import annotations

from typing import Set

from repro.ir import nodes as N
from repro.ir.visitor import iter_stmt_exprs, walk_expr, walk_stmts


def _collect_reads(fn: N.Function) -> Set[str]:
    reads: Set[str] = set()
    for s in walk_stmts(fn.body):
        for e in iter_stmt_exprs(s):
            for node in walk_expr(e):
                if isinstance(node, N.Name):
                    reads.add(node.id)
                elif isinstance(node, N.Index):
                    reads.add(node.base)
        # LValue index expressions are reads too
        if isinstance(s, (N.Assign, N.Pop)) and isinstance(
            s.target, N.Index
        ):
            reads.add(s.target.base)  # conservatively keep arrays
    return reads


def dce_function(fn: N.Function) -> bool:
    """Remove dead scalar stores in place; returns True on change."""
    reads = _collect_reads(fn)
    # loop variables are structurally read by the loop itself
    for s in walk_stmts(fn.body):
        if isinstance(s, N.For):
            reads.add(s.var)
    changed = False

    def sweep(body):
        nonlocal changed
        out = []
        for s in body:
            if isinstance(s, N.Assign) and isinstance(s.target, N.Name):
                if s.target.id not in reads:
                    changed = True
                    continue
            elif isinstance(s, N.VarDecl):
                if s.name not in reads and _never_written(fn, s.name):
                    changed = True
                    continue
            elif isinstance(s, N.Pop) and isinstance(s.target, N.Name):
                if s.target.id not in reads:
                    new = N.PopDiscard(s.stack)
                    new.loc = s.loc
                    out.append(new)
                    changed = True
                    continue
            if isinstance(s, (N.For, N.While)):
                s.body = sweep(s.body)
            elif isinstance(s, N.If):
                s.then = sweep(s.then)
                s.orelse = sweep(s.orelse)
            out.append(s)
        return out

    fn.body = sweep(fn.body)
    return changed


def _never_written(fn: N.Function, name: str) -> bool:
    for s in walk_stmts(fn.body):
        if isinstance(s, (N.Assign, N.Pop)) and isinstance(
            s.target, N.Name
        ):
            if s.target.id == name:
                return False
    return True
