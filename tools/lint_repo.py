#!/usr/bin/env python3
"""Repo-specific lint: enforce the atomic-I/O consolidation forever.

Every durable write in the library goes through
:mod:`repro.util.atomio` (atomic rename, optional checksum framing and
fsync, fault-injection sites, retry policies).  This script AST-walks
the tree and fails CI when code reintroduces the primitives that
module exists to own:

==========  =============================================================
Code        Rule
==========  =============================================================
``RL001``   raw ``open(..., "w"/"wb"/"a"/"x"/...)`` / ``Path.open``
            write modes outside ``util/atomio.py`` — torn files on
            crash; use ``atomio.atomic_write``
``RL002``   ``os.replace`` outside ``util/atomio.py`` — the rename half
            of the atomic-write protocol must not be re-implemented
``RL003``   ``tempfile`` import inside ``src/`` outside sanctioned
            modules — scratch files belong to ``atomio`` (tests and
            benchmarks may use ``TemporaryDirectory`` freely)
==========  =============================================================

Pure stdlib on purpose: the lint CI job runs it before any dependency
is installed, and it must never rot when third-party linters change.

Usage::

    python tools/lint_repo.py [--root DIR]
"""

from __future__ import annotations

import argparse
import ast
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

#: the one module allowed to use all three primitives
ATOMIO = Path("src") / "repro" / "util" / "atomio.py"

#: directories scanned for Python sources
SCAN_DIRS = ("src", "tests", "benchmarks", "tools")

#: RL003 applies only under these roots — tests/benchmarks/tools use
#: ``tempfile.TemporaryDirectory`` as scratch space, which is fine; the
#: library proper must not create temporary files outside atomio
TEMPFILE_SCOPE = ("src",)

#: ``open()`` mode strings that create or mutate a file
_WRITE_CHARS = frozenset("wax+")


Finding = Tuple[Path, int, str, str]


def _mode_of(call: ast.Call) -> Optional[str]:
    """The literal mode argument of an ``open``-style call, if any."""
    if len(call.args) >= 2:
        arg = call.args[1]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None
    for kw in call.keywords:
        if kw.arg == "mode":
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                return kw.value.value
            return None
    return None


def _is_write_mode(mode: Optional[str]) -> bool:
    return mode is not None and bool(_WRITE_CHARS & set(mode))


def _callee_name(call: ast.Call) -> Optional[str]:
    """Dotted-ish name of the called function (``open``, ``os.replace``,
    ``something.open``), or ``None`` for computed callees."""
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        base = fn.value
        if isinstance(base, ast.Name):
            return f"{base.id}.{fn.attr}"
        return f"?.{fn.attr}"
    return None


def lint_file(path: Path, rel: Path) -> List[Finding]:
    try:
        tree = ast.parse(
            path.read_text(encoding="utf-8"), filename=str(path)
        )
    except SyntaxError as exc:
        return [(rel, exc.lineno or 0, "RL000", f"syntax error: {exc}")]
    findings: List[Finding] = []
    in_tempfile_scope = rel.parts[:1] in {
        (d,) for d in TEMPFILE_SCOPE
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _callee_name(node)
            if name is None:
                continue
            if (
                name == "open" or name.endswith(".open")
            ) and _is_write_mode(_mode_of(node)):
                findings.append(
                    (
                        rel,
                        node.lineno,
                        "RL001",
                        f"raw {name}(..., "
                        f"{_mode_of(node)!r}) write — use "
                        "repro.util.atomio.atomic_write",
                    )
                )
            elif name == "os.replace":
                findings.append(
                    (
                        rel,
                        node.lineno,
                        "RL002",
                        "os.replace outside atomio — the atomic-write "
                        "protocol lives in repro.util.atomio",
                    )
                )
        elif in_tempfile_scope and isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "tempfile":
                    findings.append(
                        (
                            rel,
                            node.lineno,
                            "RL003",
                            "tempfile import in library code — "
                            "scratch files belong to repro.util.atomio",
                        )
                    )
        elif in_tempfile_scope and isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] == "tempfile":
                findings.append(
                    (
                        rel,
                        node.lineno,
                        "RL003",
                        "tempfile import in library code — "
                        "scratch files belong to repro.util.atomio",
                    )
                )
    return findings


def iter_sources(root: Path) -> Iterator[Path]:
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        yield from sorted(base.rglob("*.py"))


def lint_repo(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    for path in iter_sources(root):
        rel = path.relative_to(root)
        if rel == ATOMIO:
            continue
        findings.extend(lint_file(path, rel))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root to scan (default: this script's repo)",
    )
    args = ap.parse_args(argv)
    findings = lint_repo(args.root)
    for rel, line, code, message in findings:
        print(f"{rel}:{line}: {code} {message}")
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint_repo: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
